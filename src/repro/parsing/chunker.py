"""Regex-over-tags shallow chunker (NP / VP / PP).

The dependency parser builds its attachment decisions on top of a flat
chunk layer, the classic shallow-parsing architecture: a tag-pattern
grammar finds base noun phrases (with their head noun), verb groups
(with auxiliaries, negation and the main verb), and prepositional
chunk starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parsing.graph import Token
from repro.tagging.tagset import NOUN_TAGS, VERB_TAGS

_NP_MODIFIER_TAGS = frozenset(
    {"DT", "PDT", "PRP$", "CD", "JJ", "JJR", "JJS", "VBN", "NN", "NNS",
     "NNP", "NNPS", "SYM"}
)
_AUX_WORDS = frozenset(
    {"be", "am", "is", "are", "was", "were", "been", "being",
     "have", "has", "had", "having", "do", "does", "did"}
)


@dataclass(frozen=True)
class Chunk:
    """A contiguous chunk: ``kind`` is 'NP', 'VG' (verb group) or 'PP'."""

    kind: str
    start: int  # inclusive token index
    end: int    # inclusive token index
    head: int   # head token index

    def __contains__(self, index: int) -> bool:
        return self.start <= index <= self.end


class Chunker:
    """Find base NPs and verb groups over a tagged token sequence."""

    def chunk(self, tokens: list[Token]) -> list[Chunk]:
        chunks: list[Chunk] = []
        i = 0
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            if tok.tag in VERB_TAGS or tok.tag == "MD":
                chunk = self._verb_group(tokens, i)
                chunks.append(chunk)
                i = chunk.end + 1
                continue
            if tok.tag in _NP_MODIFIER_TAGS or tok.tag == "PRP":
                chunk = self._noun_phrase(tokens, i)
                if chunk is not None:
                    chunks.append(chunk)
                    i = chunk.end + 1
                    continue
            i += 1
        return chunks

    # -- chunk builders ----------------------------------------------------

    @staticmethod
    def _noun_phrase(tokens: list[Token], start: int) -> Chunk | None:
        """Greedy base-NP: modifiers then a noun head; PRP is its own NP."""
        if tokens[start].tag == "PRP":
            return Chunk("NP", start, start, start)
        i = start
        n = len(tokens)
        last_noun = None
        while i < n and tokens[i].tag in _NP_MODIFIER_TAGS:
            if tokens[i].tag in NOUN_TAGS:
                last_noun = i
            i += 1
        if last_noun is None:
            # a lone demonstrative before a verb is pronominal
            # ("This can be a good choice")
            if i == start + 1 and tokens[start].tag in ("DT", "PDT"):
                return Chunk("NP", start, start, start)
            # all modifiers, no noun head: adjective phrase, not an NP
            return None
        return Chunk("NP", start, last_noun, last_noun)

    @staticmethod
    def _verb_group(tokens: list[Token], start: int) -> Chunk:
        """Verb group: (MD | be/have/do | RB)* main-verb.

        The group extends through modals, auxiliary verbs and adverbs
        and ends at the first non-auxiliary verb — its head.  A verb
        *after* the main verb ("prefer using", "avoid incurring")
        starts its own group so the parser can attach it as an open
        clausal complement.
        """
        i = start
        n = len(tokens)
        last_verb = start
        while i < n:
            token = tokens[i]
            tag = token.tag
            if tag == "MD" or (tag in VERB_TAGS
                               and token.lower in _AUX_WORDS):
                last_verb = i
                i += 1
                continue
            if tag in VERB_TAGS:
                # first non-auxiliary verb is the head; group ends here
                last_verb = i
                i += 1
                break
            if tag in ("RB", "RBR", "RBS") or token.lower == "n't":
                j = i + 1
                if j < n and (tokens[j].tag in VERB_TAGS
                              or tokens[j].tag == "MD"):
                    i += 1
                    continue
                break
            break
        return Chunk("VG", start, last_verb, last_verb)
