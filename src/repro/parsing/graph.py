"""Dependency-graph data structures.

Relations follow the Stanford typed-dependency convention the paper
uses: ``relation(governor, dependent)``, with a virtual ``ROOT``
governor (index ``-1``) for the sentence head, e.g.
``root(ROOT, prefer)``, ``nsubj(prefer, developer)``,
``xcomp(prefer, using)`` (paper §3.1.2, Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

ROOT_INDEX = -1


@dataclass(frozen=True)
class Token:
    """One token of a parsed sentence."""

    index: int
    text: str
    tag: str
    lemma: str

    @property
    def lower(self) -> str:
        return self.text.lower()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.text}/{self.tag}"


@dataclass(frozen=True)
class Dependency:
    """A typed binary relation ``relation(governor, dependent)``."""

    relation: str
    governor: int  # token index, or ROOT_INDEX
    dependent: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.relation}({self.governor}, {self.dependent})"


@dataclass
class DependencyGraph:
    """Tokens plus the set of dependency relations over them."""

    tokens: list[Token]
    dependencies: list[Dependency] = field(default_factory=list)

    # -- construction ---------------------------------------------------

    def add(self, relation: str, governor: int, dependent: int) -> None:
        """Add ``relation(governor, dependent)`` (idempotent)."""
        dep = Dependency(relation, governor, dependent)
        if dep not in self.dependencies:
            self.dependencies.append(dep)

    # -- queries ---------------------------------------------------------

    def token(self, index: int) -> Token:
        return self.tokens[index]

    @property
    def root(self) -> Token | None:
        """The sentence-head token, or None for fragment sentences."""
        for dep in self.dependencies:
            if dep.relation == "root":
                return self.tokens[dep.dependent]
        return None

    def relations(self, relation: str) -> list[Dependency]:
        """All dependencies of the given *relation* type."""
        return [d for d in self.dependencies if d.relation == relation]

    def dependents(self, governor: int, relation: str | None = None
                   ) -> list[Token]:
        """Dependents of token *governor*, optionally filtered by type."""
        return [
            self.tokens[d.dependent]
            for d in self.dependencies
            if d.governor == governor
            and (relation is None or d.relation == relation)
        ]

    def governors(self, dependent: int, relation: str | None = None
                  ) -> list[Token]:
        """Governors of token *dependent* (excluding virtual ROOT)."""
        return [
            self.tokens[d.governor]
            for d in self.dependencies
            if d.dependent == dependent
            and d.governor != ROOT_INDEX
            and (relation is None or d.relation == relation)
        ]

    def has_relation(self, dependent: int, relation: str) -> bool:
        """True if token *dependent* participates as dependent in *relation*."""
        return any(
            d.dependent == dependent and d.relation == relation
            for d in self.dependencies
        )

    def subjects(self) -> list[Token]:
        """All nsubj/nsubjpass dependents in the sentence."""
        return [
            self.tokens[d.dependent]
            for d in self.dependencies
            if d.relation in ("nsubj", "nsubjpass")
        ]

    def subject_of(self, governor: int) -> Token | None:
        """The (passive or active) subject of token *governor*, if any."""
        for d in self.dependencies:
            if d.governor == governor and d.relation in ("nsubj", "nsubjpass"):
                return self.tokens[d.dependent]
        return None

    def to_tuples(self) -> list[tuple[str, str, str]]:
        """Human-readable ``(relation, governor_text, dependent_text)``."""
        out = []
        for d in self.dependencies:
            gov = "ROOT" if d.governor == ROOT_INDEX else self.tokens[d.governor].text
            out.append((d.relation, gov, self.tokens[d.dependent].text))
        return out

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join(
            f"{rel}({gov}, {dep})" for rel, gov, dep in self.to_tuples()
        )

    def to_dot(self, title: str = "") -> str:
        """Graphviz DOT rendering of the dependency structure.

        Nodes are tokens (labeled ``text/TAG``), edges are labeled
        with the relation — the format behind diagrams like the
        paper's Figure 2.
        """
        lines = ["digraph dependencies {"]
        if title:
            escaped = title.replace('"', '\\"')
            lines.append(f'  label="{escaped}";')
        lines.append("  rankdir=LR;")
        lines.append('  node [shape=box, fontsize=10];')
        lines.append('  ROOT [shape=ellipse];')
        for token in self.tokens:
            text = token.text.replace('"', '\\"')
            lines.append(
                f'  t{token.index} [label="{text}\\n{token.tag}"];')
        for dep in self.dependencies:
            governor = "ROOT" if dep.governor == ROOT_INDEX \
                else f"t{dep.governor}"
            lines.append(
                f'  {governor} -> t{dep.dependent} '
                f'[label="{dep.relation}", fontsize=9];')
        lines.append("}")
        return "\n".join(lines)
