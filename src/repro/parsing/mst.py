"""Graph-based dependency parsing: Chu-Liu-Edmonds + perceptron.

An alternative parser to the deterministic head-attachment one
(McDonald et al. 2005 style): every possible head->dependent arc is
scored by a sparse-feature perceptron, and the maximum spanning
arborescence is decoded with the Chu-Liu-Edmonds algorithm.  Trained
from *silver* parses produced by the rule parser (the same
self-training recipe as the perceptron tagger), it provides

* an ablation point for how much Egeria's recognition depends on the
  specific parser, and
* a second opinion for parser-disagreement diagnostics.

Arc labels are assigned afterwards by the deterministic relation
rules, so downstream selectors can consume either parser's output.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

import numpy as np

from repro.parsing.graph import ROOT_INDEX, DependencyGraph, Token
from repro.parsing.parser import DependencyParser
from repro.tagging.tagset import NOUN_TAGS, VERB_TAGS

NEG = -1e9


def chu_liu_edmonds(scores: np.ndarray) -> list[int]:
    """Maximum spanning arborescence rooted at node 0.

    ``scores[h, d]`` is the score of arc ``h -> d``; node 0 is the
    virtual root (it has no head).  Returns ``heads`` with
    ``heads[0] == -1`` and ``heads[d]`` the chosen head of ``d``.
    Runs the classic recursive cycle-contraction algorithm.
    """
    n = scores.shape[0]
    scores = scores.copy()
    np.fill_diagonal(scores, NEG)
    scores[:, 0] = NEG  # nothing points at the root

    heads = [-1] * n
    for d in range(1, n):
        heads[d] = int(np.argmax(scores[:, d]))

    cycle = _find_cycle(heads)
    if cycle is None:
        return heads

    cycle_set = set(cycle)
    cycle_score = sum(scores[heads[d], d] for d in cycle)

    # contract the cycle into a single node c (reuse index mapping)
    rest = [v for v in range(n) if v not in cycle_set]
    index = {v: i for i, v in enumerate(rest)}
    c = len(rest)
    m = c + 1
    contracted = np.full((m, m), NEG)

    enter_choice: dict[int, int] = {}   # outside head -> cycle node
    leave_choice: dict[int, int] = {}   # outside dep -> cycle node

    for h in rest:
        for d in rest:
            contracted[index[h], index[d]] = scores[h, d]
    for h in rest:
        # arcs entering the cycle: break one cycle arc
        best_value, best_node = NEG, None
        for d in cycle:
            value = scores[h, d] - scores[heads[d], d]
            if value > best_value:
                best_value, best_node = value, d
        contracted[index[h], c] = best_value + cycle_score
        enter_choice[h] = best_node
    for d in rest:
        best_value, best_node = NEG, None
        for h in cycle:
            if scores[h, d] > best_value:
                best_value, best_node = scores[h, d], h
        contracted[c, index[d]] = best_value
        leave_choice[d] = best_node

    sub_heads = chu_liu_edmonds(contracted)

    # expand
    result = [-1] * n
    # head of the contracted node: breaks one arc of the cycle
    outer_head_idx = sub_heads[c]
    outer_head = rest[outer_head_idx]
    entry_node = enter_choice[outer_head]
    for d in cycle:
        result[d] = heads[d]
    result[entry_node] = outer_head
    for d in rest:
        if d == 0:
            continue
        h_idx = sub_heads[index[d]]
        result[d] = leave_choice[d] if h_idx == c else rest[h_idx]
    return result


def _find_cycle(heads: Sequence[int]) -> list[int] | None:
    """Any cycle in the head function, as an ordered node list."""
    n = len(heads)
    color = [0] * n  # 0 unvisited, 1 in progress, 2 done
    for start in range(1, n):
        if color[start]:
            continue
        path = []
        v = start
        while v > 0 and color[v] == 0:
            color[v] = 1
            path.append(v)
            v = heads[v]
        if v > 0 and color[v] == 1:
            cycle_start = path.index(v)
            for u in path:
                color[u] = 2
            return path[cycle_start:]
        for u in path:
            color[u] = 2
    return None


class MSTParser:
    """Perceptron-scored MST dependency parser."""

    def __init__(self) -> None:
        self.weights: dict[str, float] = defaultdict(float)
        self._totals: dict[str, float] = defaultdict(float)
        self._steps: dict[str, int] = defaultdict(int)
        self._step = 0
        self._rule_parser = DependencyParser()
        self._trained = False

    # -- features -----------------------------------------------------------

    @staticmethod
    def _arc_features(tokens: list[Token], h: int, d: int) -> list[str]:
        """Sparse features of the arc h -> d (h == -1 for ROOT)."""
        head_tag = "ROOT" if h < 0 else tokens[h].tag
        head_lemma = "ROOT" if h < 0 else tokens[h].lemma
        dep = tokens[d]
        direction = "R" if h < d else "L"
        distance = min(abs(d - (h if h >= 0 else 0)), 6)
        return [
            f"ht:{head_tag}|dt:{dep.tag}|{direction}",
            f"ht:{head_tag}|dt:{dep.tag}|{direction}|{distance}",
            f"hl:{head_lemma}|dt:{dep.tag}",
            f"ht:{head_tag}|dl:{dep.lemma}",
            f"hl:{head_lemma}|dl:{dep.lemma}",
            f"dt:{dep.tag}|{direction}",
        ]

    def _score(self, features: Iterable[str]) -> float:
        return sum(self.weights[f] for f in features)

    # -- decoding -------------------------------------------------------------

    def _score_matrix(self, tokens: list[Token]) -> np.ndarray:
        n = len(tokens)
        scores = np.full((n + 1, n + 1), NEG)
        for d in range(n):
            scores[0, d + 1] = self._score(self._arc_features(tokens, -1, d))
            for h in range(n):
                if h == d:
                    continue
                scores[h + 1, d + 1] = self._score(
                    self._arc_features(tokens, h, d))
        return scores

    def predict_heads(self, tokens: list[Token]) -> list[int]:
        """Head index per token (-1 = ROOT), single-root enforced.

        If unconstrained decoding yields several root children, each
        candidate root is tried with the other root arcs masked and
        the highest-scoring tree wins (the standard single-root CLE
        retrofit).
        """
        if not tokens:
            return []
        if len(tokens) == 1:
            return [-1]
        scores = self._score_matrix(tokens)
        heads = chu_liu_edmonds(scores)
        root_children = [d for d in range(1, len(heads)) if heads[d] == 0]
        if len(root_children) > 1:
            best_heads, best_value = heads, NEG
            for root in root_children:
                constrained = scores.copy()
                constrained[0, :] = NEG
                constrained[0, root] = scores[0, root]
                candidate = chu_liu_edmonds(constrained)
                value = sum(constrained[candidate[d], d]
                            for d in range(1, len(candidate)))
                if value > best_value:
                    best_heads, best_value = candidate, value
            heads = best_heads
        return [h - 1 for h in heads[1:]]

    def parse(self, sentence: str | list[str]) -> DependencyGraph:
        """Parse to a :class:`DependencyGraph` with rule-based labels."""
        base = self._rule_parser.parse(sentence)  # reuse tokens/lemmas
        tokens = base.tokens
        graph = DependencyGraph(tokens)
        if not tokens:
            return graph
        heads = self.predict_heads(tokens)
        for d, h in enumerate(heads):
            if h < 0:
                graph.add("root", ROOT_INDEX, d)
            else:
                graph.add(self._label(tokens, h, d), h, d)
        return graph

    @staticmethod
    def _label(tokens: list[Token], h: int, d: int) -> str:
        """Deterministic relation label from the tag pair."""
        head, dep = tokens[h], tokens[d]
        if dep.tag in ("DT", "PDT", "PRP$"):
            return "det"
        if dep.tag in ("JJ", "JJR", "JJS") and head.tag in NOUN_TAGS:
            return "amod"
        if dep.tag == "CD":
            return "num"
        if dep.tag in NOUN_TAGS and head.tag in NOUN_TAGS:
            return "compound"
        if dep.tag == "IN":
            return "prep"
        if dep.tag == "TO":
            return "mark"
        if dep.tag in ("RB", "RBR", "RBS"):
            return "advmod"
        if dep.tag == "MD":
            return "aux"
        if head.tag in VERB_TAGS and dep.tag in NOUN_TAGS | {"PRP"}:
            return "nsubj" if d < h else "dobj"
        if head.tag in VERB_TAGS and dep.tag in VERB_TAGS:
            return "xcomp" if d > h else "dep"
        return "dep"

    # -- training ---------------------------------------------------------------

    def train_from_parser(
        self,
        sentences: Iterable[str | list[str]],
        iterations: int = 3,
        seed: int = 1,
    ) -> None:
        """Structured-perceptron training on the rule parser's silver
        head assignments."""
        examples: list[tuple[list[Token], list[int]]] = []
        for sentence in sentences:
            graph = self._rule_parser.parse(sentence)
            if len(graph.tokens) < 2:
                continue
            gold = self._silver_heads(graph)
            examples.append((graph.tokens, gold))

        rng = np.random.default_rng(seed)
        order = np.arange(len(examples))
        for _ in range(iterations):
            rng.shuffle(order)
            for idx in order:
                tokens, gold = examples[idx]
                predicted = self.predict_heads(tokens)
                self._step += 1
                for d, (gold_h, pred_h) in enumerate(zip(gold, predicted)):
                    if gold_h == pred_h:
                        continue
                    for feat in self._arc_features(tokens, gold_h, d):
                        self._update(feat, +1.0)
                    for feat in self._arc_features(tokens, pred_h, d):
                        self._update(feat, -1.0)
        self._average()
        self._trained = True

    @staticmethod
    def _silver_heads(graph: DependencyGraph) -> list[int]:
        """Head function from a rule-parser graph (first governor wins;
        unattached tokens fall back to the root or token 0)."""
        n = len(graph.tokens)
        heads = [None] * n
        root = graph.root
        for dep in graph.dependencies:
            if dep.relation == "root":
                heads[dep.dependent] = -1
            elif heads[dep.dependent] is None and dep.governor != dep.dependent:
                heads[dep.dependent] = dep.governor
        anchor = root.index if root is not None else 0
        for i in range(n):
            if heads[i] is None:
                heads[i] = -1 if i == anchor else anchor
        # break any accidental cycles by re-rooting offenders
        for i in range(n):
            seen = set()
            v = i
            while v != -1 and v not in seen:
                seen.add(v)
                v = heads[v]
            if v != -1:  # cycle detected
                heads[v] = -1 if v == anchor else anchor
                if heads[v] == v:
                    heads[v] = -1
        return heads

    def _update(self, feature: str, delta: float) -> None:
        self._totals[feature] += (self._step - self._steps[feature]) \
            * self.weights[feature]
        self._steps[feature] = self._step
        self.weights[feature] += delta

    def _average(self) -> None:
        for feature in list(self.weights):
            total = self._totals[feature] + (
                self._step - self._steps[feature]) * self.weights[feature]
            self.weights[feature] = total / max(self._step, 1)

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize the trained arc weights as JSON."""
        import json

        if not self._trained:
            raise RuntimeError("cannot save an untrained parser")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"weights": dict(self.weights)}, handle)

    @classmethod
    def load(cls, path: str) -> "MSTParser":
        """Load a parser previously written by :meth:`save`."""
        import json

        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        parser = cls()
        parser.weights.update(payload["weights"])
        parser._trained = True
        return parser

    # -- evaluation ---------------------------------------------------------------

    def unlabeled_attachment(
        self, sentences: Iterable[str | list[str]]
    ) -> float:
        """UAS agreement with the rule parser's silver heads."""
        correct = total = 0
        for sentence in sentences:
            graph = self._rule_parser.parse(sentence)
            if len(graph.tokens) < 2:
                continue
            gold = self._silver_heads(graph)
            predicted = self.predict_heads(graph.tokens)
            for g, p in zip(gold, predicted):
                total += 1
                correct += g == p
        return correct / total if total else 0.0
