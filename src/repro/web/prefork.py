"""Prefork multiprocess serving over a shared mmap-backed snapshot.

The single-process server (:mod:`repro.web.server`) scales with
threads, but CPython threads share one GIL — scoring-bound load tops
out near one core.  This module runs N worker *processes* instead:

* the **master** binds the listening socket, forks N workers, and then
  only supervises — it never loads an index, so its memory stays flat
  and its restart cost is trivial;
* each **worker** inherits the listener across ``fork()`` and loads
  the advisor from the snapshot store.  With binary (v4) snapshots the
  load is a ``numpy.memmap`` of the ``advisor.bin`` sidecar, so every
  worker maps the *same* read-only page-cache pages — N workers cost
  one copy of the index plus page tables.  The kernel load-balances
  ``accept()`` across the workers blocked on the shared listener.

Lifecycle (mirroring the threaded server's contract):

* **SIGTERM / SIGINT** (master) — fan-out SIGTERM to every worker;
  each worker runs the PR-6 graceful drain (shed new work, wait for
  in-flight requests, stop) *without* saving a final snapshot — N
  workers racing to write snapshots would be N-1 wasted writes, and
  workers serve a read-only index anyway.  The master exits once the
  last worker is reaped.
* **SIGHUP** (master) — forwarded to every worker; each reloads the
  latest good snapshot off the serving path and swaps it in atomically
  (the ``CURRENT`` flip published by the build side).  In-flight
  requests finish on the old mapping — on Linux an unlinked snapshot
  file stays readable through existing mappings until the last worker
  repoints.
* **worker death** — the master respawns crashed workers.  A worker
  that dies within :data:`QUICK_DEATH_S` of spawn counts as a strike;
  :data:`MAX_STRIKES` consecutive quick deaths abort the master
  instead of fork-bombing a persistent failure (e.g. a corrupt store).

Workers refuse ``POST /api/extend`` with a 409 (``allow_extend=False``)
— in-place extension would diverge the siblings; the supported
ingestion path is build-a-snapshot + SIGHUP.
"""

from __future__ import annotations

import errno
import logging
import os
import signal
import socket
import sys
import threading
import time

from wsgiref.simple_server import WSGIServer

from repro.core.config import (
    DEFAULT_DEADLINE_MS,
    DEFAULT_DRAIN_TIMEOUT_MS,
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_IN_FLIGHT,
)
from repro.core.persistence import PersistenceError
from repro.web.app import AdvisorApp
from repro.web.server import (
    HardenedRequestHandler,
    ThreadingWSGIServer,
    shutdown_gracefully,
)

logger = logging.getLogger("repro.web.prefork")

#: a worker death within this many seconds of its spawn counts as a
#: "quick death" — the signature of a persistent startup failure
QUICK_DEATH_S = 1.0

#: consecutive quick deaths tolerated before the master gives up
MAX_STRIKES = 5


def create_listener(host: str, port: int,
                    backlog: int = 128) -> socket.socket:
    """Bind and listen before forking, so workers inherit one shared
    accept queue and a ``--port 0`` pick is made exactly once."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(backlog)
    return listener


def server_from_socket(listener: socket.socket,
                       app: AdvisorApp) -> WSGIServer:
    """A :class:`ThreadingWSGIServer` serving an already-bound socket.

    ``bind_and_activate=False`` skips bind+listen; the placeholder
    socket the constructor made is swapped for *listener* and closed.
    The environ fields ``server_bind`` would have set are filled from
    the listener's actual address (which reflects a kernel-assigned
    port when the master bound port 0).
    """
    host, port = listener.getsockname()[:2]
    server = ThreadingWSGIServer((host, port), HardenedRequestHandler,
                                 bind_and_activate=False)
    placeholder = server.socket
    server.socket = listener
    placeholder.close()
    server.server_address = listener.getsockname()
    server.server_name = host
    server.server_port = port
    server.setup_environ()
    server.set_app(app)
    return server


def worker_loop(listener: socket.socket, store, *,
                max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                request_deadline_s: float | None =
                DEFAULT_DEADLINE_MS / 1000.0,
                max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
                drain_timeout_s: float =
                DEFAULT_DRAIN_TIMEOUT_MS / 1000.0) -> int:
    """One worker: load the advisor from *store*, serve *listener*.

    Runs until SIGTERM (graceful drain, no final snapshot — the index
    is read-only here) and answers SIGHUP by reloading the latest good
    snapshot.  Returns the process exit code.
    """
    try:
        advisor = store.load()
    except (PersistenceError, OSError):
        logger.exception("worker %d could not load a snapshot",
                         os.getpid())
        return 1
    app = AdvisorApp(advisor,
                     max_body_bytes=max_body_bytes,
                     request_deadline_s=request_deadline_s,
                     max_in_flight=max_in_flight,
                     snapshot_store=store,
                     allow_extend=False)
    server = server_from_socket(listener, app)

    def _on_sigterm(signum, frame) -> None:
        # shutdown() blocks until serve_forever() returns, so the
        # drain sequence runs off the signal handler's thread
        threading.Thread(
            target=shutdown_gracefully,
            args=(server, app, drain_timeout_s),
            kwargs={"save_snapshot": False},
            name="drain", daemon=True).start()

    def _on_sighup(signum, frame) -> None:
        def _reload() -> None:
            try:
                tool = store.load()
            except (PersistenceError, OSError):
                logger.exception("worker %d reload failed; serving "
                                 "the previous advisor", os.getpid())
                return
            app.reload(tool)

        threading.Thread(target=_reload, name="reload",
                         daemon=True).start()

    # the master fans SIGTERM out explicitly; a terminal Ctrl-C also
    # reaches the whole foreground process group, so workers ignore
    # SIGINT and rely on the master's orderly TERM
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGHUP, _on_sighup)
    logger.info("worker %d serving generation %d", os.getpid(),
                advisor.generation)
    try:
        server.serve_forever()
    finally:
        server.server_close()
    return 0


def _spawn(listener: socket.socket, store, options: dict) -> int:
    pid = os.fork()
    if pid:
        return pid
    # child: never return into the master's stack — any exception ends
    # the process, and os._exit skips atexit/handler teardown that
    # belongs to the master
    try:
        code = worker_loop(listener, store, **options)
    except BaseException:
        logger.exception("worker %d crashed", os.getpid())
        code = 1
    os._exit(code)


def run_prefork(store, host: str = "127.0.0.1", port: int = 8000,
                workers: int = 2, *,
                name: str | None = None,
                max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                request_deadline_s: float | None =
                DEFAULT_DEADLINE_MS / 1000.0,
                max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
                drain_timeout_s: float =
                DEFAULT_DRAIN_TIMEOUT_MS / 1000.0) -> int:
    """Master loop: bind, fork *workers* children over *store*, supervise.

    Blocks until SIGTERM/SIGINT has been fanned out and every worker
    is reaped.  Returns the master's exit code (non-zero when the
    quick-death strike budget was exhausted).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not hasattr(os, "fork"):  # pragma: no cover - non-posix
        raise RuntimeError("prefork serving requires os.fork()")
    options = {
        "max_body_bytes": max_body_bytes,
        "request_deadline_s": request_deadline_s,
        "max_in_flight": max_in_flight,
        "drain_timeout_s": drain_timeout_s,
    }
    listener = create_listener(host, port)
    bound_port = listener.getsockname()[1]
    children: dict[int, float] = {}   # pid -> spawn time
    shutting_down = False
    exit_code = 0

    def _fan_out(signum, frame) -> None:
        nonlocal shutting_down
        shutting_down = True
        for pid in list(children):
            _kill(pid, signal.SIGTERM)

    def _forward_hup(signum, frame) -> None:
        for pid in list(children):
            _kill(pid, signal.SIGHUP)

    signal.signal(signal.SIGTERM, _fan_out)
    signal.signal(signal.SIGINT, _fan_out)
    signal.signal(signal.SIGHUP, _forward_hup)

    for _ in range(workers):
        children[_spawn(listener, store, options)] = time.monotonic()
    label = name if name is not None else "snapshot store"
    # flush so wrappers capturing a pipe (the CI smoke test) see the
    # port before the first request
    print(f"Serving {label!r} (prefork, {len(children)} workers) on "
          f"http://{host}:{bound_port}/", flush=True)

    strikes = 0
    while children:
        try:
            pid, status = os.waitpid(-1, 0)
        except InterruptedError:  # pragma: no cover - pre-PEP-475 path
            continue
        except ChildProcessError:
            break
        spawned_at = children.pop(pid, None)
        if spawned_at is None:
            continue
        if shutting_down:
            continue
        lifetime = time.monotonic() - spawned_at
        logger.warning("worker %d exited (status %d) after %.1fs",
                       pid, status, lifetime)
        if lifetime < QUICK_DEATH_S:
            strikes += 1
            if strikes >= MAX_STRIKES:
                logger.error("%d consecutive quick worker deaths; "
                             "shutting down instead of respawning",
                             strikes)
                exit_code = 1
                shutting_down = True
                for other in list(children):
                    _kill(other, signal.SIGTERM)
                continue
        else:
            strikes = 0
        children[_spawn(listener, store, options)] = time.monotonic()
    listener.close()
    return exit_code


def _kill(pid: int, signum: int) -> None:
    try:
        os.kill(pid, signum)
    except OSError as error:  # pragma: no cover - reap race
        if error.errno != errno.ESRCH:
            raise


if __name__ == "__main__":  # pragma: no cover - manual smoke entry
    from repro.core.snapshots import SnapshotStore

    logging.basicConfig(level=logging.INFO)
    sys.exit(run_prefork(SnapshotStore(sys.argv[1]),
                         port=int(sys.argv[2]) if len(sys.argv) > 2
                         else 8000))
