"""WSGI application serving an advising tool.

Routes (mirroring the artifact's web UI):

* ``GET /`` — the advising summary page with search box and upload
  form (Figure 6);
* ``GET /query?q=...`` — HTML answer page for a free-text query
  (Figure 7);
* ``POST /upload`` — an NVVP report (PDF or plain text body, or a
  multipart form with a ``report`` file field); responds with the
  answer pages for every extracted issue;
* ``GET /api/query?q=...`` — JSON answers for programmatic use;
* ``GET /health`` — liveness probe.

The application object is a standard WSGI callable, so it runs under
any WSGI server (the bundled :func:`repro.web.server.serve`, gunicorn,
etc.) and is unit-testable by direct invocation.
"""

from __future__ import annotations

import html as _html
import json
import re
from urllib.parse import parse_qs

from repro.core.advisor import AdvisingTool, Answer
from repro.core.render import render_answer, render_summary

_SEARCH_FORM = """
<form action="/query" method="get" style="margin:1em 0">
  <input type="text" name="q" size="50" placeholder="optimization question">
  <button type="submit">Ask</button>
</form>
<form action="/upload" method="post" enctype="multipart/form-data"
      style="margin:1em 0">
  <input type="file" name="report">
  <button type="submit">Upload report</button>
</form>
"""


class AdvisorApp:
    """WSGI app wrapping one :class:`AdvisingTool`."""

    def __init__(self, advisor: AdvisingTool) -> None:
        self.advisor = advisor
        self._summary_html: str | None = None

    # -- WSGI entry point -----------------------------------------------

    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        try:
            if path == "/" and method == "GET":
                return self._respond(start_response, self.summary_page())
            if path == "/query" and method == "GET":
                return self._query(environ, start_response)
            if path == "/api/query" and method == "GET":
                return self._api_query(environ, start_response)
            if path == "/upload" and method == "POST":
                return self._upload(environ, start_response)
            if path == "/health" and method == "GET":
                return self._respond(start_response, '{"status": "ok"}',
                                     content_type="application/json")
            return self._respond(start_response, "not found",
                                 status="404 Not Found",
                                 content_type="text/plain")
        except Exception as error:  # pragma: no cover - defensive
            return self._respond(
                start_response, f"internal error: {error}",
                status="500 Internal Server Error",
                content_type="text/plain")

    # -- handlers -----------------------------------------------------------

    def summary_page(self) -> str:
        if self._summary_html is None:
            summary = render_summary(self.advisor)
            self._summary_html = summary.replace(
                "<h1>", _SEARCH_FORM + "<h1>", 1)
        return self._summary_html

    def _query(self, environ, start_response):
        query = self._query_param(environ, "q")
        if not query:
            return self._respond(start_response,
                                 "missing query parameter 'q'",
                                 status="400 Bad Request",
                                 content_type="text/plain")
        answer = self.advisor.query(query)
        return self._respond(start_response,
                             render_answer(self.advisor, answer))

    def _api_query(self, environ, start_response):
        query = self._query_param(environ, "q")
        if not query:
            return self._respond(start_response,
                                 json.dumps({"error": "missing 'q'"}),
                                 status="400 Bad Request",
                                 content_type="application/json")
        answer = self.advisor.query(query)
        return self._respond(start_response, json.dumps(answer.to_dict()),
                             content_type="application/json")

    def _upload(self, environ, start_response):
        body = self._read_body(environ)
        content_type = environ.get("CONTENT_TYPE", "")
        if content_type.startswith("multipart/form-data"):
            body = _extract_multipart_file(body, content_type) or b""
        if body.startswith(b"%PDF"):
            answers = self.advisor.query_report_pdf(body)
        else:
            answers = self.advisor.query_report(
                body.decode("utf-8", errors="replace"))
        if not answers:
            return self._respond(
                start_response,
                "<p>No performance issues found in the report.</p>")
        pages = [render_answer(self.advisor, answer) for answer in answers]
        combined = "\n<hr>\n".join(pages)
        return self._respond(start_response, combined)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _query_param(environ, name: str) -> str:
        params = parse_qs(environ.get("QUERY_STRING", ""))
        values = params.get(name, [])
        return values[0].strip() if values else ""

    @staticmethod
    def _read_body(environ) -> bytes:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        stream = environ.get("wsgi.input")
        return stream.read(length) if (stream and length) else b""

    @staticmethod
    def _respond(start_response, body: str, status: str = "200 OK",
                 content_type: str = "text/html; charset=utf-8"):
        data = body.encode("utf-8")
        start_response(status, [
            ("Content-Type", content_type),
            ("Content-Length", str(len(data))),
        ])
        return [data]


def _extract_multipart_file(body: bytes, content_type: str) -> bytes | None:
    """Pull the first file payload out of a multipart/form-data body."""
    match = re.search(r'boundary="?([^";,\s]+)"?', content_type)
    if match is None:
        return None
    boundary = b"--" + match.group(1).encode("ascii")
    for part in body.split(boundary):
        header_end = part.find(b"\r\n\r\n")
        if header_end < 0:
            continue
        headers = part[:header_end]
        if b"filename=" not in headers:
            continue
        payload = part[header_end + 4:]
        return payload.rstrip(b"\r\n-")
    return None
