"""WSGI application serving an advising tool.

Routes (mirroring the artifact's web UI):

* ``GET /`` — the advising summary page with search box and upload
  form (Figure 6);
* ``GET /query?q=...`` — HTML answer page for a free-text query
  (Figure 7);
* ``POST /upload`` — an NVVP report (PDF or plain text body, or a
  multipart form with a ``report`` file field); responds with the
  answer pages for every extracted issue;
* ``GET /api/query?q=...`` — JSON answers for programmatic use;
* ``POST /api/batch`` — many queries answered in one request under a
  single deadline budget (JSON body ``{"queries": [...]}``);
* ``POST /api/extend`` — streaming ingestion: analyze a new guide
  (JSON body ``{"text": ..., "title": ...?, "refit": ...?}``), seal
  its advising sentences as a fresh index segment and publish the
  extended advisor without interrupting readers;
* ``POST /api/reload`` — swap in the advisor of the latest good
  snapshot without dropping in-flight queries (requires a configured
  snapshot store);
* ``GET /health`` — liveness probe;
* ``GET /healthz`` — readiness/diagnostics: advisor stats, degradation
  counters, request counters, per-status response counters, admission
  gate state, snapshot-store state, query-cache counters.

The query routes accept a ``limit`` parameter capping each answer to
its top-k recommendations; the cap is pushed down into the retrieval
layer (partial selection) and honoured by the HTML renderer.

The application object is a standard WSGI callable, so it runs under
any WSGI server (the bundled :func:`repro.web.server.serve`, gunicorn,
etc.) and is unit-testable by direct invocation.  One instance may be
driven by many server threads concurrently: the advisor is shared
read-only and every mutable counter lives in a lock-guarded
:class:`ThreadSafeCounters`.

Hardening: request bodies are capped (413 on oversize), every request
runs under a deadline budget (503 on expiry), malformed bodies and
multipart payloads yield structured JSON 400s, and no handler ever
leaks a raw traceback — unexpected errors become JSON 500s.

Lifecycle (this layer's durability contract):

* **admission control** — at most ``max_in_flight`` requests execute
  concurrently; excess load is shed immediately with a 429 +
  ``Retry-After`` instead of queueing into deadline expiry.  Probe
  routes (``/health``, ``/healthz``) and the reload endpoint bypass
  the gate so observability survives saturation;
* **zero-downtime reload** — every request captures the advisor
  reference once at dispatch, so :meth:`AdvisorApp.reload` (driven by
  ``POST /api/reload`` or SIGHUP) swaps in a freshly loaded snapshot
  while in-flight queries finish on the old index;
* **graceful drain** — :meth:`AdvisorApp.begin_drain` sheds new work
  with 503 + ``Retry-After`` and :meth:`AdvisorApp.drain` waits (under
  a deadline) for in-flight requests to finish, the SIGTERM sequence
  of :mod:`repro.web.server`.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from urllib.parse import parse_qs

from repro.core.advisor import AdvisingTool
from repro.core.config import (
    DEFAULT_DEADLINE_MS,
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_RETRY_AFTER_S,
)
from repro.core.persistence import PersistenceError
from repro.core.render import render_answer, render_summary
from repro.docs.document import Document
from repro.resilience.faults import active_injector
from repro.resilience.policy import Deadline, DeadlineExceeded

logger = logging.getLogger("repro.web.app")

_SEARCH_FORM = """
<form action="/query" method="get" style="margin:1em 0">
  <input type="text" name="q" size="50" placeholder="optimization question">
  <button type="submit">Ask</button>
</form>
<form action="/upload" method="post" enctype="multipart/form-data"
      style="margin:1em 0">
  <input type="file" name="report">
  <button type="submit">Upload report</button>
</form>
"""


class HTTPError(Exception):
    """A handler-raised error rendered as a structured JSON response."""

    def __init__(self, status: str, message: str, **detail) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.detail = detail


class MultipartError(ValueError):
    """The multipart/form-data body could not be parsed."""


class ThreadSafeCounters:
    """Lock-guarded named counters shared across server threads.

    Mapping-like for reads (``counters["requests"]``, ``snapshot()``)
    so existing probes keep working; all writes go through
    :meth:`increment`, which is atomic under the lock — a bare
    ``dict[key] += 1`` is a read-modify-write race once the WSGI
    server dispatches handlers on multiple threads.

    ``extensible=True`` lets :meth:`increment` create keys on first
    use — the per-status response counters can't know every status
    line up front; the fixed default keeps the typo protection for
    the named request counters.
    """

    def __init__(self, names: tuple[str, ...] = (),
                 extensible: bool = False) -> None:
        self._lock = threading.Lock()
        self._extensible = extensible
        # egeria: guarded-by[self._lock]
        self._values: dict[str, int] = dict.fromkeys(names, 0)

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            if self._extensible and name not in self._values:
                self._values[name] = 0
            self._values[name] += amount

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._values[name]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._values)

    def snapshot(self) -> dict[str, int]:
        """Consistent point-in-time copy (the ``/healthz`` payload)."""
        with self._lock:
            return dict(self._values)


#: hard cap on queries accepted by one ``/api/batch`` request
DEFAULT_MAX_BATCH_QUERIES = 256


class AdvisorApp:
    """WSGI app wrapping one :class:`AdvisingTool`.

    The advisor reference itself is mutable state: :meth:`reload`
    publishes a replacement with a single attribute assignment (atomic
    under the GIL), and every request captures the reference exactly
    once at dispatch — a request never observes two different indexes.
    """

    #: routes that bypass admission control and draining — probes and
    #: the reload endpoint must keep answering while the gate is
    #: saturated or the server is shutting down
    _UNGATED = frozenset({"/health", "/healthz", "/api/reload"})

    def __init__(
        self,
        advisor: AdvisingTool,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_deadline_s: float | None = DEFAULT_DEADLINE_MS / 1000.0,
        max_batch_queries: int = DEFAULT_MAX_BATCH_QUERIES,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        retry_after_s: int = DEFAULT_RETRY_AFTER_S,
        snapshot_store=None,
        allow_extend: bool = True,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self._advisor = advisor
        # prefork workers serve a shared read-only mapping: in-place
        # extension would diverge the siblings, so ingestion is
        # refused with a 409 pointing at the build-and-reload path
        self.allow_extend = allow_extend
        self.max_body_bytes = max_body_bytes
        self.request_deadline_s = request_deadline_s
        self.max_batch_queries = max_batch_queries
        self.max_in_flight = max_in_flight
        self.retry_after_s = retry_after_s
        self.snapshot_store = snapshot_store
        # egeria: guarded-by[self._summary_lock]
        self._summary_html: str | None = None
        # egeria: guarded-by[self._summary_lock]
        self._summary_key: tuple[int, int] | None = None
        self._summary_lock = threading.Lock()
        self._gate = threading.Condition()
        self._in_flight = 0   # egeria: guarded-by[self._gate]
        self._draining = False  # egeria: guarded-by[self._gate]
        self.counters = ThreadSafeCounters((
            "requests",
            "errors",
            "rejected_payloads",
            "rejected_admission",
            "rejected_draining",
            "deadline_expired",
            "degraded_answers",
            "body_read_errors",
            "batch_queries",
            "reloads",
            "extends",
        ))
        self.status_counters = ThreadSafeCounters(extensible=True)

    @property
    def advisor(self) -> AdvisingTool:
        """The currently published advisor (swapped by :meth:`reload`)."""
        return self._advisor

    # -- lifecycle ------------------------------------------------------

    def reload(self, advisor: AdvisingTool) -> int:
        """Publish *advisor* as the serving index.

        A single reference swap: requests dispatched after this line
        see the new advisor, in-flight requests finish on the old one.
        Returns the new advisor's index generation.
        """
        self._advisor = advisor
        self.counters.increment("reloads")
        logger.info("advisor reloaded (generation %d, %d sentences)",
                    advisor.generation, len(advisor.advising_sentences))
        return advisor.generation

    def begin_drain(self) -> None:
        """Stop admitting gated work; probes keep answering."""
        with self._gate:
            self._draining = True

    def drain(self, timeout_s: float = 10.0) -> bool:
        """Begin draining and wait for in-flight requests to finish.

        Returns True when the gate emptied within *timeout_s*, False
        when requests were still running at the deadline (the caller
        decides whether to hard-stop anyway).
        """
        self.begin_drain()
        end = time.monotonic() + timeout_s
        with self._gate:
            while self._in_flight > 0:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._gate.wait(remaining)
        return True

    @property
    def draining(self) -> bool:
        with self._gate:
            return self._draining

    @property
    def in_flight(self) -> int:
        with self._gate:
            return self._in_flight

    # -- WSGI entry point -----------------------------------------------

    def __call__(self, environ, start_response):
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        self.counters.increment("requests")
        if path in self._UNGATED:
            return self._dispatch(environ, start_response, method, path)
        with self._gate:
            if self._draining:
                self.counters.increment("rejected_draining")
                return self._json_error(
                    start_response, "503 Service Unavailable",
                    "server is draining", retry_after=True)
            if self._in_flight >= self.max_in_flight:
                self.counters.increment("rejected_admission")
                return self._json_error(
                    start_response, "429 Too Many Requests",
                    f"{self._in_flight} requests already in flight "
                    f"(limit {self.max_in_flight})", retry_after=True,
                    limit_in_flight=self.max_in_flight)
            self._in_flight += 1
        try:
            return self._dispatch(environ, start_response, method, path)
        finally:
            with self._gate:
                self._in_flight -= 1
                self._gate.notify_all()

    def _dispatch(self, environ, start_response, method: str, path: str):
        # one capture per request: reload() may swap self._advisor at
        # any point, but this request sticks with what it saw here
        advisor = self._advisor
        deadline = Deadline(self.request_deadline_s)
        try:
            if path == "/" and method == "GET":
                return self._respond(start_response,
                                     self.summary_page(advisor))
            if path == "/query" and method == "GET":
                return self._query(advisor, environ, start_response)
            if path == "/api/query" and method == "GET":
                return self._api_query(advisor, environ, start_response)
            if path == "/api/batch" and method == "POST":
                return self._api_batch(advisor, environ, start_response,
                                       deadline)
            if path == "/upload" and method == "POST":
                return self._upload(advisor, environ, start_response,
                                    deadline)
            if path == "/api/reload" and method == "POST":
                return self._api_reload(start_response)
            if path == "/api/extend" and method == "POST":
                return self._api_extend(advisor, environ, start_response)
            if path == "/health" and method == "GET":
                return self._respond(start_response, '{"status": "ok"}',
                                     content_type="application/json")
            if path == "/healthz" and method == "GET":
                return self._healthz(advisor, start_response)
            raise HTTPError("404 Not Found", f"no route for {path}")
        except HTTPError as error:
            if error.status.startswith("413"):
                self.counters.increment("rejected_payloads")
            return self._json_error(start_response, error.status,
                                    error.message, **error.detail)
        except DeadlineExceeded as error:
            self.counters.increment("deadline_expired")
            return self._json_error(
                start_response, "503 Service Unavailable", str(error),
                retry_after=True)
        except Exception as error:
            # never leak a traceback to the client; log it server-side
            self.counters.increment("errors")
            logger.exception("unhandled error serving %s %s", method, path)
            return self._json_error(
                start_response, "500 Internal Server Error",
                "internal error", type=type(error).__name__)

    # -- handlers -----------------------------------------------------------

    def summary_page(self, advisor: AdvisingTool | None = None) -> str:
        advisor = advisor if advisor is not None else self._advisor
        key = (id(advisor), advisor.generation)
        with self._summary_lock:
            if self._summary_html is None or self._summary_key != key:
                summary = render_summary(advisor)
                self._summary_html = summary.replace(
                    "<h1>", _SEARCH_FORM + "<h1>", 1)
                self._summary_key = key
            return self._summary_html

    def _answer(self, advisor: AdvisingTool, query: str,
                limit: int | None = None):
        answer = advisor.query(query, limit=limit)
        if answer.degraded:
            self.counters.increment("degraded_answers")
        return answer

    def _query(self, advisor, environ, start_response):
        query = self._query_param(environ, "q")
        if not query:
            raise HTTPError("400 Bad Request",
                            "missing query parameter 'q'")
        limit = self._limit_param(environ)
        answer = self._answer(advisor, query, limit)
        return self._respond(
            start_response,
            render_answer(advisor, answer, limit=limit))

    def _api_query(self, advisor, environ, start_response):
        query = self._query_param(environ, "q")
        if not query:
            raise HTTPError("400 Bad Request",
                            "missing query parameter 'q'")
        answer = self._answer(advisor, query, self._limit_param(environ))
        return self._respond(start_response, json.dumps(answer.to_dict()),
                             content_type="application/json")

    def _api_reload(self, start_response):
        """Load the latest good snapshot and swap it in."""
        if self.snapshot_store is None:
            raise HTTPError("409 Conflict",
                            "no snapshot store configured")
        try:
            tool, report = self.snapshot_store.load_with_report()
        except PersistenceError as error:
            raise HTTPError("503 Service Unavailable",
                            f"reload failed: {error}")
        generation = self.reload(tool)
        return self._respond(
            start_response,
            json.dumps({
                "status": "reloaded",
                "snapshot_version": report.version,
                "recovered": report.recovered,
                "generation": generation,
            }),
            content_type="application/json")

    def _api_extend(self, advisor, environ, start_response):
        """Streaming ingestion: fold a new guide into the advisor.

        Body: ``{"text": ..., "title": str?, "refit": bool?}``.  The
        new document's advising sentences are sealed as one immutable
        index segment (``refit=True`` forces the rebuild-the-world
        path), so readers keep serving from their captured index until
        the extended one is published.
        """
        if not self.allow_extend:
            raise HTTPError(
                "409 Conflict",
                "extension is disabled on this worker (prefork workers "
                "serve a shared read-only index; rebuild a snapshot and "
                "reload instead)")
        body = self._read_body(environ)
        try:
            payload = json.loads(body.decode("utf-8", errors="replace"))
        except ValueError:
            raise HTTPError("400 Bad Request", "malformed JSON body")
        if not isinstance(payload, dict):
            raise HTTPError("400 Bad Request",
                            "body must be a JSON object")
        text = payload.get("text")
        if not isinstance(text, str) or not text.strip():
            raise HTTPError("400 Bad Request",
                            "'text' must be a non-empty string")
        title = payload.get("title")
        if title is not None and not isinstance(title, str):
            raise HTTPError("400 Bad Request", "'title' must be a string")
        refit = payload.get("refit", False)
        if not isinstance(refit, bool):
            raise HTTPError("400 Bad Request", "'refit' must be a boolean")
        document = Document.from_text(text, title=title or "Extension")
        added = advisor.extend(document, refit=refit)
        self.counters.increment("extends")
        index = advisor.recommender.index
        return self._respond(
            start_response,
            json.dumps({
                "status": "extended",
                "added": added,
                "refit": refit,
                "generation": advisor.generation,
                "segments": index.n_segments,
                "advising_sentences": len(advisor.advising_sentences),
            }),
            content_type="application/json")

    def _api_batch(self, advisor, environ, start_response,
                   deadline: Deadline):
        """Answer many queries in one request under one deadline budget.

        Body: ``{"queries": [...], "threshold": float?, "limit": int?}``.
        Amortizes connection and parsing overhead for report-style
        clients that would otherwise fire dozens of ``/api/query``
        round-trips.
        """
        body = self._read_body(environ)
        try:
            payload = json.loads(body.decode("utf-8", errors="replace"))
        except ValueError:
            raise HTTPError("400 Bad Request", "malformed JSON body")
        if not isinstance(payload, dict):
            raise HTTPError("400 Bad Request",
                            "body must be a JSON object")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries or not all(
                isinstance(q, str) and q.strip() for q in queries):
            raise HTTPError(
                "400 Bad Request",
                "'queries' must be a non-empty list of non-empty strings")
        if len(queries) > self.max_batch_queries:
            raise HTTPError(
                "413 Payload Too Large",
                f"batch of {len(queries)} queries exceeds the "
                f"{self.max_batch_queries}-query limit",
                limit_queries=self.max_batch_queries)
        threshold = payload.get("threshold")
        if threshold is not None:
            if not isinstance(threshold, (int, float)) or \
                    not 0.0 <= float(threshold) <= 1.0:
                raise HTTPError("400 Bad Request",
                                "'threshold' must be a number in [0, 1]")
            threshold = float(threshold)
        limit = payload.get("limit")
        if limit is not None and (
                not isinstance(limit, int) or isinstance(limit, bool)
                or limit < 0):
            raise HTTPError("400 Bad Request",
                            "'limit' must be a non-negative integer")
        answers = []
        for query in queries:
            deadline.check("batch.answer")
            answer = advisor.query(query.strip(),
                                   threshold=threshold, limit=limit)
            if answer.degraded:
                self.counters.increment("degraded_answers")
            answers.append(answer.to_dict())
        self.counters.increment("batch_queries", len(queries))
        return self._respond(
            start_response,
            json.dumps({"count": len(answers), "answers": answers}),
            content_type="application/json")

    def _upload(self, advisor, environ, start_response,
                deadline: Deadline):
        body = self._read_body(environ)
        content_type = environ.get("CONTENT_TYPE", "")
        if content_type.startswith("multipart/form-data"):
            try:
                body = _extract_multipart_file(body, content_type)
            except MultipartError as error:
                raise HTTPError("400 Bad Request",
                                f"malformed multipart body: {error}")
        deadline.check("upload.parse")
        if body.startswith(b"%PDF"):
            try:
                answers = advisor.query_report_pdf(body)
            except Exception as error:
                raise HTTPError("400 Bad Request",
                                "could not parse PDF report",
                                type=type(error).__name__)
        else:
            try:
                answers = advisor.query_report(
                    body.decode("utf-8", errors="replace"))
            except Exception as error:
                raise HTTPError("400 Bad Request",
                                "could not parse report",
                                type=type(error).__name__)
        if not answers:
            return self._respond(
                start_response,
                "<p>No performance issues found in the report.</p>")
        pages = []
        for answer in answers:
            deadline.check("upload.answer")
            if answer.degraded:
                self.counters.increment("degraded_answers")
            pages.append(render_answer(advisor, answer))
        combined = "\n<hr>\n".join(pages)
        return self._respond(start_response, combined)

    def _healthz(self, advisor, start_response):
        payload = advisor.health()
        payload["requests"] = self.counters.snapshot()
        payload["responses"] = self.status_counters.snapshot()
        with self._gate:
            payload["admission"] = {
                "in_flight": self._in_flight,
                "max_in_flight": self.max_in_flight,
                "draining": self._draining,
            }
        if self.snapshot_store is not None:
            payload["snapshots"] = self.snapshot_store.stats()
        injector = active_injector()
        if injector is not None:
            payload["fault_injection"] = {
                "plan": injector.plan.name,
                "points": injector.stats(),
            }
        return self._respond(start_response, json.dumps(payload),
                             content_type="application/json")

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _query_param(environ, name: str) -> str:
        params = parse_qs(environ.get("QUERY_STRING", ""))
        values = params.get(name, [])
        return values[0].strip() if values else ""

    def _limit_param(self, environ) -> int | None:
        """The optional ``limit`` query parameter (top-k cap)."""
        raw = self._query_param(environ, "limit")
        if not raw:
            return None
        try:
            limit = int(raw)
        except ValueError:
            raise HTTPError("400 Bad Request",
                            f"invalid limit parameter: {raw!r}")
        if limit < 0:
            raise HTTPError("400 Bad Request",
                            "limit must be >= 0")
        return limit

    def _read_body(self, environ) -> bytes:
        """Read the request body, enforcing presence, size and
        completeness of ``Content-Length``."""
        raw_length = environ.get("CONTENT_LENGTH")
        if raw_length in (None, ""):
            raise HTTPError("400 Bad Request",
                            "missing Content-Length header")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise HTTPError("400 Bad Request",
                            f"invalid Content-Length: {raw_length!r}")
        if length < 0:
            raise HTTPError("400 Bad Request",
                            "negative Content-Length")
        if length > self.max_body_bytes:
            raise HTTPError(
                "413 Payload Too Large",
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
                limit_bytes=self.max_body_bytes)
        stream = environ.get("wsgi.input")
        if stream is None or length == 0:
            return b""
        try:
            data = stream.read(length)
        except (OSError, ValueError) as error:
            # OSError: client hung up / transport failure; ValueError:
            # closed or misbehaving stream object.  Anything else is a
            # server bug and belongs in the 500 path with a traceback,
            # not a client-blaming 400.
            self.counters.increment("body_read_errors")
            raise HTTPError("400 Bad Request",
                            "could not read request body",
                            type=type(error).__name__)
        if len(data) < length:
            raise HTTPError(
                "400 Bad Request",
                f"truncated request body: got {len(data)} of "
                f"{length} bytes")
        return data

    def _respond(self, start_response, body: str, status: str = "200 OK",
                 content_type: str = "text/html; charset=utf-8",
                 extra_headers: tuple = ()):
        data = body.encode("utf-8")
        self.status_counters.increment(status.split(" ", 1)[0])
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(data))),
        ]
        headers.extend(extra_headers)
        start_response(status, headers)
        return [data]

    def _json_error(self, start_response, status: str, message: str,
                    retry_after: bool = False, **detail):
        payload: dict = {"error": {"status": status, "message": message}}
        if detail:
            payload["error"].update(detail)
        extra = (("Retry-After", str(self.retry_after_s)),) \
            if retry_after else ()
        return self._respond(start_response, json.dumps(payload),
                             status=status,
                             content_type="application/json",
                             extra_headers=extra)


def _extract_multipart_file(body: bytes, content_type: str) -> bytes:
    """Pull the first file payload out of a multipart/form-data body.

    Raises :class:`MultipartError` on a missing boundary declaration,
    a body that does not contain the boundary, or the absence of any
    file part — truncated uploads surface as a 400, never a 500.
    """
    match = re.search(r'boundary="?([^";,\s]+)"?', content_type)
    if match is None:
        raise MultipartError("no boundary in Content-Type")
    boundary = b"--" + match.group(1).encode("ascii", errors="replace")
    parts = body.split(boundary)
    if len(parts) < 2:
        raise MultipartError("boundary never appears in body")
    for part in parts:
        header_end = part.find(b"\r\n\r\n")
        if header_end < 0:
            continue
        headers = part[:header_end]
        if b"filename=" not in headers:
            continue
        payload = part[header_end + 4:]
        return payload.rstrip(b"\r\n-")
    raise MultipartError("no file part in multipart body")
