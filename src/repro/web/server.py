"""Development WSGI server for the advising web app.

Equivalent to the artifact's ``./run.sh`` (which launched the Flask
app under Gunicorn with a configurable host/port): builds the advisor
once, then serves it.

Concurrency: by default requests are dispatched on one thread per
connection (:class:`ThreadingWSGIServer`) over a single shared
:class:`AdvisorApp` — the advisor's index is immutable after build and
every mutable counter on the serving path is lock-guarded, so the only
scaling limit is the scoring work itself.  ``threads=False`` restores
the strictly serial server (useful for step-debugging).

Hardening over the stock ``wsgiref`` server: per-connection socket
timeouts (a stalled client cannot wedge the process), access/error
lines routed through :mod:`logging` instead of raw stderr, and the
app-level payload cap and request deadline are configurable here.
"""

from __future__ import annotations

import logging
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.core.advisor import AdvisingTool
from repro.core.config import DEFAULT_DEADLINE_MS, DEFAULT_MAX_BODY_BYTES
from repro.web.app import AdvisorApp

logger = logging.getLogger("repro.web.server")


class HardenedRequestHandler(WSGIRequestHandler):
    """Request handler with socket timeouts and quiet logging."""

    #: seconds a connection may sit idle before being dropped
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.info("%s - %s", self.address_string(), format % args)

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        logger.warning("%s - %s", self.address_string(), format % args)


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """WSGI server answering each connection on its own thread.

    ``daemon_threads`` keeps a hung handler from blocking process
    exit; ``block_on_close`` stays default-True so ``server_close()``
    in tests joins outstanding handlers before asserting counters.
    """

    daemon_threads = True


def serve(
    advisor: AdvisingTool,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    request_deadline_s: float | None = DEFAULT_DEADLINE_MS / 1000.0,
    threads: bool = True,
) -> WSGIServer:
    """Create (but do not start) a WSGI server for *advisor*.

    Call ``serve_forever()`` on the returned server to run it, or
    ``handle_request()`` to process a single request (useful in
    tests).  Binding to port 0 picks a free port
    (``server.server_port`` reports it).  The returned server's
    ``.application`` is the :class:`AdvisorApp`, so its counters and
    ``/healthz`` view are reachable from test code.  ``threads``
    selects the concurrent server (default) or the serial one.
    """
    app = AdvisorApp(advisor, max_body_bytes=max_body_bytes,
                     request_deadline_s=request_deadline_s)
    server_class = ThreadingWSGIServer if threads else WSGIServer
    return make_server(host, port, app, server_class=server_class,
                       handler_class=HardenedRequestHandler)


def run(advisor: AdvisingTool, host: str = "127.0.0.1",
        port: int = 8000,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_deadline_s: float | None = DEFAULT_DEADLINE_MS / 1000.0,
        threads: bool = True,
        ) -> None:  # pragma: no cover - interactive
    """Serve *advisor* until interrupted."""
    server = serve(advisor, host, port,
                   max_body_bytes=max_body_bytes,
                   request_deadline_s=request_deadline_s,
                   threads=threads)
    mode = "threaded" if threads else "single-threaded"
    print(f"Serving {advisor.name!r} ({mode}) on "
          f"http://{host}:{server.server_port}/")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
