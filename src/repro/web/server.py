"""Development WSGI server for the advising web app.

Equivalent to the artifact's ``./run.sh`` (which launched the Flask
app under Gunicorn with a configurable host/port): builds the advisor
once, then serves it.

Concurrency: by default requests are dispatched on one thread per
connection (:class:`ThreadingWSGIServer`) over a single shared
:class:`AdvisorApp` — the advisor's index is published as an immutable
handle and every mutable counter on the serving path is lock-guarded,
so the only scaling limit is the scoring work itself.
``threads=False`` restores the strictly serial server (useful for
step-debugging).

Hardening over the stock ``wsgiref`` server: per-connection socket
timeouts (a stalled client cannot wedge the process), access/error
lines routed through :mod:`logging` instead of raw stderr, and the
app-level payload cap and request deadline are configurable here.

Lifecycle signals (:func:`run`):

* **SIGTERM** — graceful drain: the app stops admitting gated work
  (503 + ``Retry-After``), in-flight requests get ``drain_timeout_s``
  to finish, a final snapshot is saved when a store is configured,
  then the server exits;
* **SIGHUP** — zero-downtime reload: the latest good snapshot is
  loaded off the serving path and swapped in atomically (same code
  path as ``POST /api/reload``).
"""

from __future__ import annotations

import logging
import signal
import threading
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.core.advisor import AdvisingTool
from repro.core.config import (
    DEFAULT_DEADLINE_MS,
    DEFAULT_DRAIN_TIMEOUT_MS,
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_IN_FLIGHT,
)
from repro.core.persistence import PersistenceError
from repro.web.app import AdvisorApp

logger = logging.getLogger("repro.web.server")


class HardenedRequestHandler(WSGIRequestHandler):
    """Request handler with socket timeouts and quiet logging."""

    #: seconds a connection may sit idle before being dropped
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.info("%s - %s", self.address_string(), format % args)

    def log_error(self, format: str, *args) -> None:  # noqa: A002
        logger.warning("%s - %s", self.address_string(), format % args)


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """WSGI server answering each connection on its own thread.

    ``daemon_threads`` keeps a hung handler from blocking process
    exit; ``block_on_close`` stays default-True so ``server_close()``
    in tests joins outstanding handlers before asserting counters.
    """

    daemon_threads = True


def serve(
    advisor: AdvisingTool,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    request_deadline_s: float | None = DEFAULT_DEADLINE_MS / 1000.0,
    threads: bool = True,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    snapshot_store=None,
) -> WSGIServer:
    """Create (but do not start) a WSGI server for *advisor*.

    Call ``serve_forever()`` on the returned server to run it, or
    ``handle_request()`` to process a single request (useful in
    tests).  Binding to port 0 picks a free port
    (``server.server_port`` reports it).  The returned server's
    ``.application`` is the :class:`AdvisorApp`, so its counters,
    lifecycle methods and ``/healthz`` view are reachable from test
    code.  ``threads`` selects the concurrent server (default) or the
    serial one.  ``snapshot_store`` enables ``POST /api/reload`` and
    the SIGHUP/SIGTERM snapshot behavior of :func:`run`.
    """
    app = AdvisorApp(advisor, max_body_bytes=max_body_bytes,
                     request_deadline_s=request_deadline_s,
                     max_in_flight=max_in_flight,
                     snapshot_store=snapshot_store)
    server_class = ThreadingWSGIServer if threads else WSGIServer
    return make_server(host, port, app, server_class=server_class,
                       handler_class=HardenedRequestHandler)


def shutdown_gracefully(server: WSGIServer, app: AdvisorApp,
                        drain_timeout_s: float,
                        save_snapshot: bool = True) -> bool:
    """The SIGTERM sequence, callable directly from tests.

    Sheds new work, waits up to *drain_timeout_s* for in-flight
    requests, saves a final snapshot when the app has a store, then
    stops the accept loop.  Returns True when the drain completed
    before the deadline.
    """
    drained = app.drain(drain_timeout_s)
    if not drained:
        logger.warning("drain deadline expired with %d requests "
                       "in flight; stopping anyway", app.in_flight)
    if save_snapshot and app.snapshot_store is not None:
        try:
            info = app.snapshot_store.save(app.advisor)
            logger.info("final snapshot %d saved", info.version)
        except (PersistenceError, OSError):
            logger.exception("final snapshot failed; last committed "
                             "snapshot remains current")
    server.shutdown()
    return drained


def run(advisor: AdvisingTool, host: str = "127.0.0.1",
        port: int = 8000,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_deadline_s: float | None = DEFAULT_DEADLINE_MS / 1000.0,
        threads: bool = True,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        snapshot_store=None,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_MS / 1000.0,
        ) -> None:  # pragma: no cover - interactive
    """Serve *advisor* until interrupted (SIGTERM drains gracefully,
    SIGHUP hot-reloads the latest snapshot)."""
    server = serve(advisor, host, port,
                   max_body_bytes=max_body_bytes,
                   request_deadline_s=request_deadline_s,
                   threads=threads,
                   max_in_flight=max_in_flight,
                   snapshot_store=snapshot_store)
    app: AdvisorApp = server.get_app()

    def _on_sigterm(signum, frame) -> None:
        # shutdown() blocks until serve_forever() returns, so the
        # sequence runs off the signal handler's thread
        threading.Thread(
            target=shutdown_gracefully,
            args=(server, app, drain_timeout_s),
            name="drain", daemon=True).start()

    def _on_sighup(signum, frame) -> None:
        if app.snapshot_store is None:
            logger.warning("SIGHUP ignored: no snapshot store")
            return

        def _reload() -> None:
            try:
                tool = app.snapshot_store.load()
            except (PersistenceError, OSError):
                logger.exception("SIGHUP reload failed; serving the "
                                 "previous advisor")
                return
            app.reload(tool)

        threading.Thread(target=_reload, name="reload",
                         daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
        signal.signal(signal.SIGHUP, _on_sighup)
    except ValueError:
        # not the main thread (embedded run); signals stay default
        logger.debug("signal handlers not installed")

    mode = "threaded" if threads else "single-threaded"
    print(f"Serving {advisor.name!r} ({mode}) on "
          f"http://{host}:{server.server_port}/", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        app.begin_drain()
    finally:
        server.server_close()
