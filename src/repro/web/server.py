"""Development WSGI server for the advising web app.

Equivalent to the artifact's ``./run.sh`` (which launched the Flask
app under Gunicorn with a configurable host/port): builds the advisor
once, then serves it.
"""

from __future__ import annotations

from wsgiref.simple_server import WSGIServer, make_server

from repro.core.advisor import AdvisingTool
from repro.web.app import AdvisorApp


def serve(
    advisor: AdvisingTool,
    host: str = "127.0.0.1",
    port: int = 8000,
) -> WSGIServer:
    """Create (but do not start) a WSGI server for *advisor*.

    Call ``serve_forever()`` on the returned server to run it, or
    ``handle_request()`` to process a single request (useful in
    tests).  Binding to port 0 picks a free port
    (``server.server_port`` reports it).
    """
    app = AdvisorApp(advisor)
    return make_server(host, port, app)


def run(advisor: AdvisingTool, host: str = "127.0.0.1",
        port: int = 8000) -> None:  # pragma: no cover - interactive
    """Serve *advisor* until interrupted."""
    server = serve(advisor, host, port)
    print(f"Serving {advisor.name!r} on http://{host}:{server.server_port}/")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
