"""Web application layer (Flask/Gunicorn replacement).

"Egeria itself is a web-based tool" (§3.2): the synthesized advising
tool is served as a website whose front page lists the advising
summary (Figure 6), with a search box for queries and an upload button
for NVVP report PDFs (Figure 7 shows an answer page).  The artifact
used Flask + Gunicorn; this package provides an equivalent pure-stdlib
WSGI application plus a development server.
"""

from repro.web.app import AdvisorApp
from repro.web.server import serve

__all__ = ["AdvisorApp", "serve"]
