"""The advice pre-filter model: train, decide, persist.

:class:`AdvicePrefilter` distills the five-selector cascade into three
cheap rungs evaluated per sentence, in order:

1. **exact keyword** — rule #1 of the cascade
   (:meth:`repro.core.selectors.KeywordSelector.matches_stems`) over
   the featurizer's memoized stems.  A hit *is* a cascade positive by
   definition, so the default-provenance recognizer can return
   ``("keyword")`` without touching the ladder;
2. **margin skip** — a length-normalized linear margin over token/stem
   features, trained with the averaged perceptron of
   :mod:`repro.tagging.perceptron`.  A margin below the calibrated
   threshold ``tau`` (minus the configured safety slack) skips the
   sentence as confidently negative;
3. **evidence skip** — a sentence containing *no* defer-evidence token
   is skipped.  The defer-token set is built by the calibration
   harness as a greedy set cover over every calibration positive, so
   "no evidence token present" is impossible for a calibration
   positive by construction.

Rungs 2 and 3 are each individually zero-false-negative on the
calibration corpus, so their *union* is too; everything else defers to
the full cascade.  Out-of-vocabulary tokens always defer — the filter
never extrapolates beyond the text distribution it was calibrated on.

The trained model persists as a single checksummed JSON artifact
(format :data:`PREFILTER_FORMAT_VERSION`); the same payload embeds
into advisor files and snapshots via :mod:`repro.core.persistence`, so
the filter loads alongside the index it was distilled for.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.keywords import KeywordConfig
from repro.core.selectors import KeywordSelector
from repro.stage1.features import PrefilterFeaturizer
from repro.tagging.perceptron import AveragedPerceptron

#: format version of the persisted model artifact
PREFILTER_FORMAT_VERSION = 1

#: decision labels returned by :meth:`AdvicePrefilter.decide`
SKIP = "skip"
DEFER = "defer"
KEYWORD = "keyword"

#: perceptron class labels (binary problem over the multiclass API)
_POSITIVE = "advising"
_NEGATIVE = "other"

#: ceiling on the calibrated margin threshold: even when calibration
#: finds no positive beyond the keyword rung (so any threshold is
#: zero-FN on the corpus), the margin rung never skips a sentence the
#: model scores as net-positive
TAU_CAP = 0.0


class PrefilterError(ValueError):
    """A pre-filter artifact could not be loaded or validated."""


@dataclass(frozen=True)
class Example:
    """One training/calibration sentence: its tokens and its label.

    ``positive`` is True when the sentence must never be skipped —
    advising per the generation labels, the cascade's decision, or
    both (callers union the two; see
    :func:`train_prefilter_for_document`).
    """

    tokens: tuple[str, ...]
    positive: bool


class AdvicePrefilter:
    """A calibrated, recall-safe advice pre-filter."""

    def __init__(
        self,
        weights: dict[str, float],
        vocabulary: frozenset[str],
        defer_tokens: frozenset[str],
        tau: float | None = None,
        margin_slack: float = 0.0,
        keywords: KeywordConfig | None = None,
        trained_on: dict | None = None,
    ) -> None:
        self.weights = dict(weights)
        #: every lowercased token seen during training — any sentence
        #: containing a token outside it defers (no extrapolation)
        self.vocabulary = frozenset(vocabulary)
        #: calibration's greedy set cover over the positives: a
        #: sentence with no token in this set cannot be a calibration
        #: positive, so rung 3 may skip it
        self.defer_tokens = frozenset(defer_tokens)
        #: most aggressive zero-FN margin threshold (None = the margin
        #: rung is disabled until :func:`repro.stage1.calibration
        #: .calibrate` has run)
        self.tau = tau
        #: conservatism knob subtracted from ``tau`` at decision time
        #: (normalized-margin units); raising it trades skip rate for
        #: headroom on corpora drifting away from the calibration set
        self.margin_slack = float(margin_slack)
        self.keywords = keywords or KeywordConfig()
        #: provenance of the training run (corpus name, sizes, seed)
        self.trained_on = dict(trained_on or {})
        self.featurizer = PrefilterFeaturizer()
        self._keyword = KeywordSelector(self.keywords)

    # -- inference --------------------------------------------------------

    def margin(self, features: set[str]) -> float:
        """Length-normalized score: mean feature weight, signed."""
        weights = self.weights
        total = 0.0
        for name in features:
            weight = weights.get(name)
            if weight is not None:
                total += weight
        return total / len(features) if features else 0.0

    def decide(self, tokens: Sequence[str]) -> str:
        """Classify one tokenized sentence into a rung outcome.

        Returns :data:`KEYWORD` (cascade rule #1 fires — definitely
        advising), :data:`SKIP` (confidently negative: the cascade
        never runs), or :data:`DEFER` (uncertain: the full cascade
        decides).  The empty sentence defers.
        """
        if not tokens:
            return DEFER
        featurizer = self.featurizer
        lowers = featurizer.lowers(tokens)
        stems = featurizer.stems(lowers)
        if self._keyword.matches_stems(stems):
            return KEYWORD
        vocabulary = self.vocabulary
        in_vocab = True
        has_evidence = False
        defer_tokens = self.defer_tokens
        for token in lowers:
            if token not in vocabulary:
                in_vocab = False
                break
            if token in defer_tokens:
                has_evidence = True
        if not in_vocab:
            return DEFER
        if self.tau is not None:
            threshold = min(self.tau, TAU_CAP) - self.margin_slack
            if self.margin(featurizer.features(lowers, stems)) < threshold:
                return SKIP
        if not has_evidence:
            return SKIP
        return DEFER

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible payload with checksum.

        Key order and float formatting are canonical, so the same
        trained model always produces byte-identical artifacts (the
        determinism regression test relies on it).
        """
        body = {
            "format_version": PREFILTER_FORMAT_VERSION,
            "weights": {name: self.weights[name]
                        for name in sorted(self.weights)},
            "vocabulary": sorted(self.vocabulary),
            "defer_tokens": sorted(self.defer_tokens),
            "tau": self.tau,
            "margin_slack": self.margin_slack,
            "keywords": self.keywords.to_dict(),
            "trained_on": {key: self.trained_on[key]
                           for key in sorted(self.trained_on)},
        }
        body["checksum"] = _payload_checksum(body)
        return body

    @property
    def checksum(self) -> str:
        """The artifact checksum of the current model state."""
        return self.to_dict()["checksum"]

    @classmethod
    def from_dict(cls, data: dict) -> "AdvicePrefilter":
        """Rebuild a model from :meth:`to_dict`, verifying checksum."""
        if not isinstance(data, dict):
            raise PrefilterError(
                f"prefilter payload must be a JSON object, got "
                f"{type(data).__name__}")
        version = data.get("format_version")
        if version != PREFILTER_FORMAT_VERSION:
            raise PrefilterError(
                f"unsupported prefilter format version {version!r} "
                f"(supported: {PREFILTER_FORMAT_VERSION})")
        recorded = data.get("checksum")
        body = {key: value for key, value in data.items()
                if key != "checksum"}
        actual = _payload_checksum(body)
        if recorded != actual:
            raise PrefilterError(
                f"prefilter artifact failed checksum validation "
                f"(recorded {recorded!r}, computed {actual!r}) — "
                f"refusing to skip sentences with a corrupt model")
        try:
            weights = {str(name): float(weight)
                       for name, weight in data["weights"].items()}
            vocabulary = frozenset(str(t) for t in data["vocabulary"])
            defer_tokens = frozenset(str(t) for t in data["defer_tokens"])
            tau = data["tau"]
            slack = float(data["margin_slack"])
            keywords = KeywordConfig.from_dict(data["keywords"])
            trained_on = dict(data["trained_on"])
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise PrefilterError(
                f"malformed prefilter payload: "
                f"{type(error).__name__}: {error}") from error
        return cls(
            weights=weights, vocabulary=vocabulary,
            defer_tokens=defer_tokens,
            tau=None if tau is None else float(tau),
            margin_slack=slack, keywords=keywords, trained_on=trained_on)

    def save(self, path: str) -> None:
        """Write the artifact crash-safely (atomic replace)."""
        from repro.core.persistence import atomic_write_text

        atomic_write_text(path, json.dumps(
            self.to_dict(), ensure_ascii=False, indent=1) + "\n")

    @classmethod
    def load(cls, path: str) -> "AdvicePrefilter":
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise PrefilterError(
                f"cannot read prefilter artifact {path!r}: "
                f"{error}") from error
        return cls.from_dict(data)


def _payload_checksum(body: dict) -> str:
    """sha256 over the canonical JSON encoding of the payload body."""
    canonical = json.dumps(body, ensure_ascii=False, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- training ---------------------------------------------------------------


def train_prefilter(
    examples: Sequence[Example],
    keywords: KeywordConfig | None = None,
    iterations: int = 10,
    seed: int = 1,
    trained_on: dict | None = None,
) -> AdvicePrefilter:
    """Train the margin model on labeled examples.

    Sentences the exact keyword rung already decides are excluded from
    the perceptron's training set: the margin only ever scores
    sentences that *reach* rung 2, so it learns the conditional
    distribution it is evaluated on.  The returned model is untuned
    (``tau=None``, empty defer set) — run
    :func:`repro.stage1.calibration.calibrate` before serving it.
    """
    config = keywords or KeywordConfig()
    featurizer = PrefilterFeaturizer()
    keyword = KeywordSelector(config)
    vocabulary: set[str] = set()
    training: list[tuple[set[str], str]] = []
    for example in examples:
        lowers = featurizer.lowers(example.tokens)
        vocabulary.update(lowers)
        stems = featurizer.stems(lowers)
        if keyword.matches_stems(stems):
            continue
        training.append((
            featurizer.features(lowers, stems),
            _POSITIVE if example.positive else _NEGATIVE,
        ))
    model = AveragedPerceptron()
    model.classes = {_POSITIVE, _NEGATIVE}
    rng = np.random.default_rng(seed)
    order = np.arange(len(training))
    for _ in range(max(1, iterations)):
        rng.shuffle(order)
        for index in order:
            features, truth = training[index]
            counts = dict.fromkeys(features, 1)
            guess = model.predict(counts)
            model.update(truth, guess, counts)
    model.average_weights()
    weights: dict[str, float] = {}
    for feature in sorted(model.weights):
        labels = model.weights[feature]
        weight = labels.get(_POSITIVE, 0.0) - labels.get(_NEGATIVE, 0.0)
        if weight:
            weights[feature] = weight
    return AdvicePrefilter(
        weights=weights, vocabulary=frozenset(vocabulary),
        defer_tokens=frozenset(), tau=None, keywords=config,
        trained_on=dict(trained_on or {},
                        examples=len(examples),
                        trained=len(training),
                        iterations=int(iterations), seed=int(seed)))


def train_prefilter_for_document(
    document,
    keywords: KeywordConfig | None = None,
    labels: Sequence[bool] | None = None,
    recognizer=None,
    iterations: int = 10,
    seed: int = 1,
    margin_slack: float = 0.0,
    trained_on: dict | None = None,
):
    """Distill + calibrate a pre-filter for one document.

    Runs the pure selector cascade once over *document* (the full
    Stage I pass every first build pays anyway) and uses its decisions
    as distillation targets; when generation-time *labels* are given
    (index-aligned booleans, e.g. from
    :meth:`repro.corpus.builder.LabeledGuide.labels`), a sentence
    positive by *either* source is a calibration positive — strictly
    more conservative than either alone.  Returns
    ``(prefilter, calibration_report, eval_report)``; every later
    rebuild/extend over the same distribution skips through it with a
    recognized-advice set identical to the pure cascade.
    """
    from repro.core.recognizer import AdvisingSentenceRecognizer
    from repro.stage1.calibration import calibrate
    from repro.stage1.eval import evaluate_prefilter

    config = keywords or KeywordConfig()
    recognizer = recognizer or AdvisingSentenceRecognizer(keywords=config)
    results = recognizer.recognize(document)
    if labels is not None and len(labels) != len(results):
        raise ValueError(
            f"labels cover {len(labels)} sentences, document has "
            f"{len(results)}")
    annotations = recognizer.last_annotations
    examples: list[Example] = []
    cascade: list[bool] = []
    for index, result in enumerate(results):
        tokens = None
        if annotations is not None and index < len(annotations):
            tokens = annotations[index].tokens
        if tokens is None:
            tokens = result.sentence.text.split()
        positive = bool(result.is_advising)
        if labels is not None:
            positive = positive or bool(labels[index])
        examples.append(Example(tokens=tuple(tokens), positive=positive))
        cascade.append(bool(result.is_advising))
    prefilter = train_prefilter(
        examples, keywords=config, iterations=iterations, seed=seed,
        trained_on=dict(trained_on or {},
                        document=getattr(document, "title", None),
                        labeled=labels is not None))
    prefilter.margin_slack = float(margin_slack)
    report = calibrate(prefilter, examples)
    eval_report = evaluate_prefilter(prefilter, examples, cascade)
    return prefilter, report, eval_report
