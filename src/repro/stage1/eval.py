"""Evaluation report for a calibrated pre-filter.

Where :mod:`repro.stage1.calibration` *fits* the skip rungs against a
corpus, this module *measures* a fitted filter against a corpus — the
same one (confirming the zero-FN guarantee end to end, which CI gates
on) or a different one (quantifying how the filter transfers across
guides; cross-corpus recall below 1.0 means the filter must be
recalibrated before serving that corpus, never trusted as-is).

Two recall numbers are reported because there are two notions of
ground truth: the *labels* a corpus generator attached (what the
sentence is), and the *cascade decision* (what the five selectors say
it is).  Identity with the pure-cascade build — the property the
benchmark asserts — is recall-vs-cascade = 1.0; the paper-level
quality statement is recall-vs-labels.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass

from repro.stage1.model import (
    DEFER,
    KEYWORD,
    SKIP,
    AdvicePrefilter,
    Example,
)


@dataclass(frozen=True)
class EvalReport:
    """Pre-filter quality on one corpus (JSON-friendly)."""

    sentences: int
    positives: int                  # by the examples' labels
    cascade_positives: int          # by the selector cascade
    skipped: int
    deferred: int
    keyword_hits: int
    false_skips_vs_labels: int      # skipped but label-positive
    false_skips_vs_cascade: int     # skipped but cascade-positive
    recall_vs_labels: float         # 1.0 ⇔ label-recall-safe here
    recall_vs_cascade: float        # 1.0 ⇔ build output is identical
    retained_precision: float       # cascade positives / non-skipped
    skip_rate: float
    defer_rate: float

    def to_dict(self) -> dict:
        return {
            "sentences": self.sentences,
            "positives": self.positives,
            "cascade_positives": self.cascade_positives,
            "skipped": self.skipped,
            "deferred": self.deferred,
            "keyword_hits": self.keyword_hits,
            "false_skips_vs_labels": self.false_skips_vs_labels,
            "false_skips_vs_cascade": self.false_skips_vs_cascade,
            "recall_vs_labels": self.recall_vs_labels,
            "recall_vs_cascade": self.recall_vs_cascade,
            "retained_precision": self.retained_precision,
            "skip_rate": self.skip_rate,
            "defer_rate": self.defer_rate,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"


def evaluate_prefilter(
    prefilter: AdvicePrefilter,
    examples: Sequence[Example],
    cascade: Sequence[bool] | None = None,
) -> EvalReport:
    """Measure *prefilter* against *examples*.

    *cascade* is the index-aligned pure-cascade decision per sentence;
    when omitted, the examples' labels stand in for it (the two recall
    numbers then coincide).
    """
    if cascade is not None and len(cascade) != len(examples):
        raise ValueError(
            f"cascade decisions cover {len(cascade)} sentences, "
            f"examples cover {len(examples)}")
    skipped = deferred = keyword_hits = 0
    positives = cascade_positives = 0
    false_labels = false_cascade = 0
    retained_cascade_positives = 0
    for index, example in enumerate(examples):
        by_cascade = bool(cascade[index]) if cascade is not None \
            else example.positive
        if example.positive:
            positives += 1
        if by_cascade:
            cascade_positives += 1
        decision = prefilter.decide(example.tokens)
        if decision == SKIP:
            skipped += 1
            if example.positive:
                false_labels += 1
            if by_cascade:
                false_cascade += 1
        else:
            if decision == KEYWORD:
                keyword_hits += 1
            elif decision == DEFER:
                deferred += 1
            if by_cascade:
                retained_cascade_positives += 1
    total = len(examples)
    retained = total - skipped
    return EvalReport(
        sentences=total, positives=positives,
        cascade_positives=cascade_positives,
        skipped=skipped, deferred=deferred, keyword_hits=keyword_hits,
        false_skips_vs_labels=false_labels,
        false_skips_vs_cascade=false_cascade,
        recall_vs_labels=(
            (positives - false_labels) / positives if positives else 1.0),
        recall_vs_cascade=(
            (cascade_positives - false_cascade) / cascade_positives
            if cascade_positives else 1.0),
        retained_precision=(
            retained_cascade_positives / retained if retained else 1.0),
        skip_rate=skipped / total if total else 0.0,
        defer_rate=deferred / total if total else 0.0,
    )


__all__ = ["EvalReport", "evaluate_prefilter"]
