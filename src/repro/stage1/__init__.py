"""Learned Stage I pre-filter — a recall-safe advice classifier.

"Help! Need Advice on Identifying Advice" (PAPERS.md) treats advice
identification as supervised classification; this package distills the
five-selector cascade into a cheap token/stem linear classifier that
runs *before* the NLP layers and short-circuits confidently-negative
sentences, so parse/SRL — and the cascade itself — are never touched
for them.

Recall safety is the contract: the pre-filter only ever *skips*
(declares non-advising) or *defers* (falls through to the full
cascade); the calibration harness (:mod:`repro.stage1.calibration`)
sweeps the decision threshold against labels and picks the most
aggressive margin with zero false negatives, so on the calibration
corpus the recognized-advice set with the pre-filter enabled is
bit-identical to the pure-cascade path.  See DESIGN.md §15.
"""

from repro.stage1.calibration import CalibrationReport, calibrate
from repro.stage1.eval import EvalReport, evaluate_prefilter
from repro.stage1.features import PrefilterFeaturizer
from repro.stage1.model import (
    PREFILTER_FORMAT_VERSION,
    AdvicePrefilter,
    PrefilterError,
    train_prefilter,
    train_prefilter_for_document,
)

__all__ = [
    "PREFILTER_FORMAT_VERSION",
    "AdvicePrefilter",
    "CalibrationReport",
    "EvalReport",
    "PrefilterError",
    "PrefilterFeaturizer",
    "calibrate",
    "evaluate_prefilter",
    "train_prefilter",
    "train_prefilter_for_document",
]
