"""Token/stem feature extraction for the Stage I pre-filter.

The featurizer consumes exactly the layers named by
:data:`repro.pipeline.layers.PREFILTER_LAYER_NEEDS` — raw tokens.
Stems are derived through a *vocabulary memo*: each distinct lowercased
token is stemmed at most once per featurizer, so on Zipf-distributed
guide text the per-sentence stemming cost collapses to dict lookups and
the pipeline's stems layer never has to materialize for a sentence the
filter skips.

Features are sparse and binary: ``w=<token>`` unigrams over lowercased
tokens, ``s=<stem>`` unigrams over their memoized stems, plus a
``bias`` term — the same feature family the averaged perceptron of
:mod:`repro.tagging.perceptron` consumes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.pipeline.layers import PREFILTER_LAYER_NEEDS  # noqa: F401 (contract re-export)
# stems single *vocabulary entries* through a memo, not sentence text —
# sentences arrive pre-tokenized from the pipeline's tokens layer
from repro.textproc.porter import PorterStemmer  # egeria: noqa[no-direct-tokenize]

#: feature-name prefixes (single source for model/calibration/tests)
TOKEN_PREFIX = "w="
STEM_PREFIX = "s="
BIAS_FEATURE = "bias"


class PrefilterFeaturizer:
    """Sparse binary features over tokens, with memoized stemming."""

    def __init__(self) -> None:
        self._stemmer = PorterStemmer()
        self._stem_memo: dict[str, str] = {}

    def stem(self, token: str) -> str:
        """The Porter stem of one lowercased token, memoized."""
        cached = self._stem_memo.get(token)
        if cached is None:
            cached = self._stemmer.stem(token)
            self._stem_memo[token] = cached
        return cached

    def lowers(self, tokens: Sequence[str]) -> list[str]:
        return [token.lower() for token in tokens]

    def stems(self, lowers: Sequence[str]) -> list[str]:
        """Memoized stems for an already-lowercased token sequence.

        Identical output to the pipeline's stems layer (same Porter
        implementation over the same tokens) — the exact-keyword rung
        relies on this equivalence.
        """
        return [self.stem(token) for token in lowers]

    def features(self, lowers: Sequence[str],
                 stems: Sequence[str]) -> set[str]:
        """The binary feature set of one sentence."""
        names: set[str] = {BIAS_FEATURE}
        for token in lowers:
            names.add(TOKEN_PREFIX + token)
        for stem in stems:
            names.add(STEM_PREFIX + stem)
        return names

    def features_of_tokens(self, tokens: Sequence[str]) -> set[str]:
        """Convenience: lowercase, stem, and featurize in one call."""
        lowers = self.lowers(tokens)
        return self.features(lowers, self.stems(lowers))
