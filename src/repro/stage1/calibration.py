"""Recall-safe calibration of the Stage I pre-filter.

Calibration fits the two skip rungs of
:class:`repro.stage1.model.AdvicePrefilter` against a labeled corpus so
that **no calibration positive can be skipped, by construction**:

* the margin threshold ``tau`` sweeps to the minimum normalized margin
  over every positive that reaches the margin rung — the most
  aggressive threshold with zero false negatives, since the skip test
  is a strict ``margin < tau``;
* the defer-token set is a greedy set cover over the same positives —
  every one of them contains at least one evidence token, so "no
  evidence token present" can only ever be true of a sentence that is
  not a calibration positive.

The union of two individually zero-false-negative rules is still
zero-false-negative, which is what lets the filter take the *more*
aggressive of the two skips per sentence.  After fitting, the harness
re-runs the full :meth:`~repro.stage1.model.AdvicePrefilter.decide`
path over the corpus and verifies the guarantee end-to-end; a violation
raises instead of returning a report.

Positives the exact-keyword rung already catches are excluded from both
fits: they can never reach the skip rungs.  Positives containing
out-of-vocabulary tokens are likewise structurally safe (the decision
path defers on any OOV token) but are still counted in the report.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.stage1.model import (
    DEFER,
    KEYWORD,
    SKIP,
    AdvicePrefilter,
    Example,
    PrefilterError,
)


@dataclass(frozen=True)
class CalibrationReport:
    """Outcome of one calibration pass (JSON-friendly)."""

    sentences: int
    positives: int
    negatives: int
    keyword_positives: int          # caught by the exact-keyword rung
    tau: float | None               # fitted margin threshold
    defer_tokens: int               # size of the fitted evidence set
    skipped: int                    # verification pass: skip decisions
    deferred: int                   # verification pass: defer decisions
    keyword_hits: int               # verification pass: keyword decisions
    false_negatives: int            # always 0 — verified, not assumed
    skip_rate: float                # skipped / sentences
    recall: float                   # always 1.0 on the calibration set
    evidence_sample: tuple[str, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "sentences": self.sentences,
            "positives": self.positives,
            "negatives": self.negatives,
            "keyword_positives": self.keyword_positives,
            "tau": self.tau,
            "defer_tokens": self.defer_tokens,
            "skipped": self.skipped,
            "deferred": self.deferred,
            "keyword_hits": self.keyword_hits,
            "false_negatives": self.false_negatives,
            "skip_rate": self.skip_rate,
            "recall": self.recall,
            "evidence_sample": list(self.evidence_sample),
        }


def calibrate(prefilter: AdvicePrefilter,
              examples: Sequence[Example]) -> CalibrationReport:
    """Fit ``tau`` and the defer-token set in place; verify zero FN.

    Mutates *prefilter* (sets ``tau`` and ``defer_tokens``) and returns
    the report.  Raises :class:`PrefilterError` if the end-to-end
    verification pass finds a skipped positive — that would mean the
    fit itself is broken, and no such model should ever be served.
    """
    featurizer = prefilter.featurizer
    keyword = prefilter._keyword
    vocabulary = prefilter.vocabulary

    positives = negatives = keyword_positives = 0
    # sentences that actually reach the skip rungs, as token sets
    reachable_positives: list[tuple[set[str], float]] = []
    negative_token_sets: list[set[str]] = []
    for example in examples:
        if not example.tokens:
            if example.positive:
                positives += 1
            else:
                negatives += 1
            continue   # empty sentences always defer
        lowers = featurizer.lowers(example.tokens)
        stems = featurizer.stems(lowers)
        if example.positive:
            positives += 1
            if keyword.matches_stems(stems):
                keyword_positives += 1
                continue
            tokens = set(lowers)
            if not tokens <= vocabulary:
                continue   # OOV positives defer structurally
            margin = prefilter.margin(featurizer.features(lowers, stems))
            reachable_positives.append((tokens, margin))
        else:
            negatives += 1
            if not keyword.matches_stems(stems):
                negative_token_sets.append(set(lowers))

    # -- rung 2: the most aggressive zero-FN margin threshold ---------------
    if reachable_positives:
        tau = min(margin for _, margin in reachable_positives)
    else:
        # no positive ever reaches the rung: any threshold is zero-FN
        # on this corpus; the TAU_CAP in decide() still bounds it
        tau = 0.0
    prefilter.tau = tau

    # -- rung 3: greedy set cover of the reachable positives ----------------
    prefilter.defer_tokens = frozenset(_greedy_cover(
        [tokens for tokens, _ in reachable_positives],
        negative_token_sets, vocabulary))

    # -- end-to-end verification: the guarantee is checked, not assumed ----
    skipped = deferred = keyword_hits = false_negatives = 0
    for example in examples:
        decision = prefilter.decide(example.tokens)
        if decision == SKIP:
            skipped += 1
            if example.positive:
                false_negatives += 1
        elif decision == KEYWORD:
            keyword_hits += 1
        else:
            deferred += 1
    if false_negatives:
        raise PrefilterError(
            f"calibration produced {false_negatives} false negative(s) "
            f"on its own corpus — refusing to emit an unsafe model")

    total = len(examples)
    return CalibrationReport(
        sentences=total, positives=positives, negatives=negatives,
        keyword_positives=keyword_positives, tau=tau,
        defer_tokens=len(prefilter.defer_tokens),
        skipped=skipped, deferred=deferred, keyword_hits=keyword_hits,
        false_negatives=0,
        skip_rate=skipped / total if total else 0.0,
        recall=1.0,
        evidence_sample=tuple(sorted(prefilter.defer_tokens)[:12]))


def _greedy_cover(positive_sets: Sequence[set[str]],
                  negative_sets: Sequence[set[str]],
                  vocabulary: frozenset[str]) -> set[str]:
    """Greedy set cover: evidence tokens covering every positive.

    Each round picks the token covering the most still-uncovered
    positives per negative sentence it would retain (``coverage /
    (negative_hits + 1)``), so the fitted set both covers all positives
    *and* stays out of as many negatives as possible — negatives
    containing an evidence token cannot be skipped by rung 3.  Ties
    break on fewer negative hits, then lexicographically, keeping the
    fit deterministic.
    """
    negative_hits: dict[str, int] = {}
    for tokens in negative_sets:
        for token in tokens:
            negative_hits[token] = negative_hits.get(token, 0) + 1

    uncovered = [tokens & vocabulary for tokens in positive_sets]
    uncovered = [tokens for tokens in uncovered if tokens]
    cover: set[str] = set()
    while uncovered:
        counts: dict[str, int] = {}
        for tokens in uncovered:
            for token in tokens:
                counts[token] = counts.get(token, 0) + 1
        best = max(sorted(counts), key=lambda token: (
            counts[token] / (negative_hits.get(token, 0) + 1.0),
            -negative_hits.get(token, 0),
        ))
        cover.add(best)
        uncovered = [tokens for tokens in uncovered
                     if best not in tokens]
    return cover


__all__ = ["CalibrationReport", "calibrate", "DEFER", "KEYWORD", "SKIP"]
