"""Experiment reproductions as library functions.

Each function reproduces one table of the paper's evaluation and
returns structured results; the benchmark suite asserts their shape
and ``egeria experiments <name>`` prints them from the command line.
"""

from repro.experiments.tables import (
    ExperimentRegistry,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

__all__ = [
    "ExperimentRegistry",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
]
