"""Table 5-8 reproduction logic.

Shared by ``benchmarks/bench_table*.py`` (which add shape assertions
and timing) and the ``egeria experiments`` CLI subcommand (which
prints the rows).  Every function is deterministic given its seed.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.baselines import FullDocMethod, KeywordAllRecognizer, KeywordsMethod
from repro.baselines.single_selector import all_single_selector_recognizers
from repro.core.egeria import Egeria
from repro.core.recognizer import AdvisingSentenceRecognizer
from repro.corpus import (
    PERFORMANCE_ISSUES,
    cuda_guide,
    opencl_guide,
    relevance_ground_truth,
    xeon_guide,
)
from repro.eval.metrics import precision_recall_f
from repro.eval.userstudy import UserStudyConfig, run_user_study
from repro.profiler import generate_report

_DEFAULT_WORKERS = max(1, min(4, (os.cpu_count() or 1)))


def _build_cuda_advisor(workers: int = _DEFAULT_WORKERS):
    guide = cuda_guide()
    advisor = Egeria(workers=workers).build_advisor(
        guide.document, name="CUDA Adviser")
    return guide, advisor


def run_table5(seed: int = 42, workers: int = _DEFAULT_WORKERS) -> dict:
    """Table 5 — user-study speedups per group per device."""
    guide, advisor = _build_cuda_advisor(workers)
    result = run_user_study(guide, advisor, UserStudyConfig(seed=seed))
    return result.summary()


def run_table6(workers: int = _DEFAULT_WORKERS) -> list[dict]:
    """Table 6 — answer quality P/R/F per issue per method."""
    guide, advisor = _build_cuda_advisor(workers)
    fulldoc = FullDocMethod(guide.document)
    keywords = KeywordsMethod(guide.document)
    rows: list[dict] = []
    for issue in PERFORMANCE_ISSUES:
        report = generate_report(issue.program)
        query = next(i.query_text() for i in report.issues()
                     if i.title == issue.issue_title)
        gold = {s.index for s in relevance_ground_truth(guide, issue)}

        egeria_pred = {r.sentence.index
                       for r in advisor.query(query).recommendations}
        fulldoc_pred = {r.sentence.index for r in fulldoc.query(query)}
        best_kw, _ = keywords.best_keyword(issue.keywords, gold)
        keyword_pred = {s.index for s in keywords.search(best_kw)}

        rows.append({
            "program": issue.program,
            "issue": issue.issue_title,
            "ground_truth": len(gold),
            "egeria": precision_recall_f(egeria_pred, gold),
            "fulldoc": precision_recall_f(fulldoc_pred, gold),
            "keywords": precision_recall_f(keyword_pred, gold),
            "best_keyword": best_kw,
        })
    return rows


def run_table7(workers: int = _DEFAULT_WORKERS) -> list[dict]:
    """Table 7 — selection statistics for the three guides."""
    recognizer = AdvisingSentenceRecognizer(workers=workers)
    rows: list[dict] = []
    for builder in (cuda_guide, opencl_guide, xeon_guide):
        guide = builder()
        selected = sum(
            1 for r in recognizer.recognize(guide.document)
            if r.is_advising)
        stats = guide.stats()
        rows.append({
            "guide": guide.spec.name,
            "sentences": stats["sentences"],
            "pages": stats["pages"],
            "selected": selected,
            "ratio": stats["sentences"] / selected if selected else 0.0,
        })
    return rows


def run_table8() -> dict[str, dict[str, dict]]:
    """Table 8 — recognition P/R/F per method on the labeled regions.

    Returns ``{guide: {method: {selected, correct, p, r, f}}}``.
    """
    regions: dict[str, tuple[list[str], set[int]]] = {}
    for name, builder in (("cuda", cuda_guide), ("opencl", opencl_guide),
                          ("xeon", xeon_guide)):
        sentences, labels = builder().labeled_region()
        texts = [s.text for s in sentences]
        gold = {i for i, label in enumerate(labels) if label}
        regions[name] = (texts, gold)

    methods: dict[str, AdvisingSentenceRecognizer] = dict(
        all_single_selector_recognizers())
    methods["KeywordAll"] = KeywordAllRecognizer()
    methods["Egeria"] = AdvisingSentenceRecognizer()

    results: dict[str, dict[str, dict]] = {}
    for guide_name, (texts, gold) in regions.items():
        results[guide_name] = {}
        for method_name, recognizer in methods.items():
            predicted = {i for i, text in enumerate(texts)
                         if recognizer.is_advising(text)}
            p, r, f = precision_recall_f(predicted, gold)
            results[guide_name][method_name] = {
                "selected": len(predicted),
                "correct": len(predicted & gold),
                "p": p, "r": r, "f": f,
            }
    return results


#: name -> (runner, description) for the CLI.
ExperimentRegistry: dict[str, tuple[Callable[[], object], str]] = {
    "table5": (run_table5, "user-study speedups (simulated)"),
    "table6": (run_table6, "answer quality vs baselines"),
    "table7": (run_table7, "advising-sentence selection statistics"),
    "table8": (run_table8, "recognition quality per method"),
}
