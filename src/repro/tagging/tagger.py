"""Deterministic rule tagger: lexicon -> morphology -> context rules.

Three layers, mirroring the multi-layered philosophy of the paper:

1. **Lexicon** — closed-class words and the known open-class
   vocabulary get their out-of-context default tag.
2. **Morphology** — unknown words are tagged from suffix/shape
   evidence (``-ing`` => VBG, ``-tion`` => NN, capitalized => NNP,
   digits => CD, code tokens => SYM, ...).
3. **Contextual rules** — Brill-style transformation rules repair the
   classic ambiguities of guide prose: imperative-initial verbs,
   verbs after modals/``to``, nouns after determiners, participles
   after *be*/*have*, gerund-vs-noun, etc.

The result is a tagger with no training data requirement whose error
modes are stable and inspectable — which is what the downstream
dependency heuristics need.
"""

from __future__ import annotations

import re

from repro.tagging.lexicon import DEFAULT_TAGS, NOUN_VERB_AMBIGUOUS
from repro.tagging.tagset import NOUN_TAGS, VERB_TAGS
from repro.textproc.wordlists import BASE_VERBS
# raw-text entry point: tag_sentence("…") is the convenience API over
# tag(tokens); pipeline callers pass token lists and never hit this
from repro.textproc.word_tokenizer import word_tokenize  # egeria: noqa[no-direct-tokenize]

_PUNCT_TAGS = {
    ".": ".", "!": ".", "?": ".",
    ",": ",", ";": ":", ":": ":", "...": ":",
    "(": "(", ")": ")", "[": "(", "]": ")", "{": "(", "}": ")",
    '"': "''", "'": "''", "`": "``",
    "%": "SYM", "/": "SYM", "+": "SYM", "*": "SYM", "=": "SYM",
    "<": "SYM", ">": "SYM", "&": "CC", "|": "SYM", "~": "SYM",
    "^": "SYM", "$": "$", "@": "SYM", "-": ":",
}

_CODE_RE = re.compile(
    r"^(?:[A-Za-z_][A-Za-z0-9_]*\(\)|__[A-Za-z0-9_]+(?:__)?|#[A-Za-z]+"
    r"|-{1,2}[A-Za-z][A-Za-z0-9_-]*|[A-Za-z]+(?:_[A-Za-z0-9]+)+)$"
)
_NUMBER_RE = re.compile(r"^\d+(?:\.\d+)*(?:f|\.x)?$|^\d+-[A-Za-z]+$")

# suffix -> tag for unknown words, longest suffix first
_SUFFIX_TAGS: tuple[tuple[str, str], ...] = (
    ("ational", "JJ"),
    ("ization", "NN"),
    ("ability", "NN"),
    ("fulness", "NN"),
    ("ousness", "NN"),
    ("iveness", "NN"),
    ("ically", "RB"),
    ("ations", "NNS"),
    ("ution", "NN"),
    ("ement", "NN"),
    ("ching", "VBG"),
    ("sion", "NN"),
    ("tion", "NN"),
    ("ness", "NN"),
    ("ment", "NN"),
    ("ance", "NN"),
    ("ence", "NN"),
    ("ship", "NN"),
    ("ties", "NNS"),
    ("ible", "JJ"),
    ("able", "JJ"),
    ("ious", "JJ"),
    ("eous", "JJ"),
    ("ical", "JJ"),
    ("less", "JJ"),
    ("ngly", "RB"),
    ("ally", "RB"),
    ("ward", "RB"),
    ("wise", "RB"),
    ("ity", "NN"),
    ("ism", "NN"),
    ("ist", "NN"),
    ("ing", "VBG"),
    ("ely", "RB"),
    ("tly", "RB"),
    ("ily", "RB"),
    ("ous", "JJ"),
    ("ive", "JJ"),
    ("ful", "JJ"),
    ("ish", "JJ"),
    ("ary", "JJ"),
    ("ate", "VB"),
    ("ize", "VB"),
    ("ify", "VB"),
    ("est", "JJS"),
    ("ed", "VBN"),
    ("er", "NN"),
    ("ly", "RB"),
    ("al", "JJ"),
    ("ic", "JJ"),
)

_BE_LEMMAS = {"be", "am", "is", "are", "was", "were", "been", "being"}
_HAVE_LEMMAS = {"have", "has", "had", "having"}


class RuleTagger:
    """Lexicon + morphology + contextual-rule POS tagger.

    >>> RuleTagger().tag(["Use", "shared", "memory", "."])
    [('Use', 'VB'), ('shared', 'JJ'), ('memory', 'NN'), ('.', '.')]
    """

    def tag_sentence(self, sentence: str) -> list[tuple[str, str]]:
        """Tokenize *sentence* and tag the tokens."""
        return self.tag(word_tokenize(sentence))

    def tag(self, tokens: list[str]) -> list[tuple[str, str]]:
        """Tag an already-tokenized sentence."""
        tags = [self._initial_tag(tok, i) for i, tok in enumerate(tokens)]
        tags = self._apply_context_rules(tokens, tags)
        return list(zip(tokens, tags))

    # -- layer 1/2: initial tag ----------------------------------------

    def _initial_tag(self, token: str, index: int) -> str:
        if token in _PUNCT_TAGS:
            return _PUNCT_TAGS[token]
        if _NUMBER_RE.match(token):
            return "CD"
        if _CODE_RE.match(token):
            return "SYM"
        lowered = token.lower()
        if lowered in DEFAULT_TAGS:
            tag = DEFAULT_TAGS[lowered]
            # inflected forms of known verbs
            return tag
        # inflected variants of known base verbs
        verb_tag = self._verb_inflection_tag(lowered)
        if verb_tag is not None:
            return verb_tag
        # plural of known nouns
        if lowered.endswith("s") and lowered[:-1] in DEFAULT_TAGS \
                and DEFAULT_TAGS[lowered[:-1]] in NOUN_TAGS:
            return "NNS"
        if lowered.endswith("es") and lowered[:-2] in DEFAULT_TAGS \
                and DEFAULT_TAGS[lowered[:-2]] in NOUN_TAGS:
            return "NNS"
        if lowered.endswith("ies") and lowered[:-3] + "y" in DEFAULT_TAGS \
                and DEFAULT_TAGS[lowered[:-3] + "y"] in NOUN_TAGS:
            return "NNS"
        # comparatives of known adjectives
        if lowered.endswith("er") and lowered[:-2] in DEFAULT_TAGS \
                and DEFAULT_TAGS[lowered[:-2]] == "JJ":
            return "JJR"
        if lowered.endswith("est") and lowered[:-3] in DEFAULT_TAGS \
                and DEFAULT_TAGS[lowered[:-3]] == "JJ":
            return "JJS"
        # shape: capitalized mid-sentence word
        if token[0].isupper() and index > 0:
            return "NNP"
        # morphology for unknown words
        for suffix, tag in _SUFFIX_TAGS:
            if lowered.endswith(suffix) and len(lowered) > len(suffix) + 1:
                if tag == "NNS" or (tag == "NN" and lowered.endswith("s")
                                    and not lowered.endswith("ss")):
                    return "NNS" if lowered.endswith("s") else tag
                return tag
        if lowered.endswith("s") and not lowered.endswith("ss"):
            return "NNS"
        return "NN"

    @staticmethod
    def _verb_inflection_tag(lowered: str) -> str | None:
        """Tag inflections of verbs from the base-verb inventory.

        Inflections of noun/verb-ambiguous bases ("accesses", "uses")
        return ``None`` so the noun-plural logic keeps the nominal
        default; contextual rule R9 flips them in verbal positions.
        """
        if lowered.endswith("ing"):
            stem = lowered[:-3]
            for cand in (stem, stem + "e",
                         stem[:-1] if stem[-1:] * 2 == stem[-2:] else stem):
                if cand in BASE_VERBS:
                    return "VBG"
        if lowered.endswith("ed"):
            stem = lowered[:-2]
            for cand in (stem, stem + "e",
                         stem[:-1] if len(stem) > 1 and stem[-1] == stem[-2] else stem):
                if cand in BASE_VERBS:
                    return "VBN"
            if lowered.endswith("ied") and lowered[:-3] + "y" in BASE_VERBS:
                return "VBN"
        third_person_base = None
        if lowered.endswith("ies") and lowered[:-3] + "y" in BASE_VERBS:
            third_person_base = lowered[:-3] + "y"
        elif lowered.endswith("es") and lowered[:-2] in BASE_VERBS:
            third_person_base = lowered[:-2]
        elif lowered.endswith("s") and lowered[:-1] in BASE_VERBS:
            third_person_base = lowered[:-1]
        if third_person_base is not None:
            if third_person_base in NOUN_VERB_AMBIGUOUS:
                return None  # prefer nominal default; R9 may flip it
            return "VBZ"
        return None

    # -- layer 3: contextual rules --------------------------------------

    def _apply_context_rules(
        self, tokens: list[str], tags: list[str]
    ) -> list[str]:
        n = len(tokens)
        lowers = [t.lower() for t in tokens]

        def prev_tag(i: int) -> str:
            return tags[i - 1] if i > 0 else "<S>"

        def next_tag(i: int) -> str:
            return tags[i + 1] if i + 1 < n else "</S>"

        for i in range(n):
            tag = tags[i]
            low = lowers[i]

            # R1: "to" + base verb => keep TO VB; "to" + noun-tagged
            # known verb => re-tag as VB ("to queue commands")
            if prev_tag(i) == "TO" and low in BASE_VERBS and tag in NOUN_TAGS:
                tags[i] = "VB"
                continue
            # R2: modal (+ optional adverbs) + anything verb-capable => VB
            j = i - 1
            while j >= 0 and tags[j] in ("RB", "RBR", "RBS"):
                j -= 1
            if j >= 0 and tags[j] == "MD":
                if low in BASE_VERBS or tag in VERB_TAGS:
                    tags[i] = "VB"
                    continue
                # "can be X" handled by R5 later; "should NN" is rare
            # R2b: a base-verb-capable token tagged VB directly before
            # a modal is actually the head noun ("this guarantee can")
            if tag == "VB" and next_tag(i) == "MD":
                tags[i] = "NN"
                continue
            # R3: sentence-initial noun/verb-ambiguous word heads an
            # imperative ("Schedule the copy early", "Use textures")
            # when no other finite verb follows in the sentence.
            if i == 0 and low in NOUN_VERB_AMBIGUOUS and next_tag(i) in (
                    "DT", "PRP$", "JJ", "PDT", "NN", "NNS", "CD", "RB"):
                has_finite = any(t in ("MD", "VBZ", "VBP", "VBD")
                                 for t in tags[1:])
                if not has_finite:
                    tags[i] = "VB"
                    continue
            # R4: determiner/possessive + verb-tagged => noun reading
            if prev_tag(i) in ("DT", "PRP$", "PDT") and tag == "VB":
                tags[i] = "NN"
                continue
            # R5: be-form + VBG stays VBG (progressive); be-form +
            # VB/VBD/-ed adjective of a known verb => VBN (passive)
            if i > 0 and lowers[i - 1] in _BE_LEMMAS | {"being", "been"}:
                if tag == "VBD" or (tag in ("VB", "JJ") and low.endswith("ed")):
                    tags[i] = "VBN"
                    continue
            # R6: have-form + VBD => VBN (perfect)
            if i > 0 and lowers[i - 1] in _HAVE_LEMMAS and tag == "VBD":
                tags[i] = "VBN"
                continue
            # R7: VBN directly before a noun is usually adjectival
            # ("shared memory", "pinned memory", "aligned accesses")
            if tag == "VBN" and next_tag(i) in NOUN_TAGS:
                tags[i] = "JJ"
                continue
            # R8: VBG before a noun where the previous word is a
            # determiner/preposition reads as adjectival/nominal
            # gerund ("the controlling condition", "by storing")
            if tag == "VBG" and prev_tag(i) in ("DT", "PRP$") \
                    and next_tag(i) in NOUN_TAGS:
                tags[i] = "JJ"
                continue
            # R9: noun-verb ambiguous word (base or -s inflection)
            # after a nominal/pronominal subject and followed by
            # object-ish material: verbal reading ("developers
            # schedule work", "the kernel uses 31 registers")
            base = None
            if low in NOUN_VERB_AMBIGUOUS:
                base = low
            elif low.endswith("es") and low[:-2] in NOUN_VERB_AMBIGUOUS:
                base = low[:-2]
            elif low.endswith("s") and low[:-1] in NOUN_VERB_AMBIGUOUS:
                base = low[:-1]
            if base is not None and tag in NOUN_TAGS:
                # guard 1: if the preceding noun is itself the object
                # of a verb/TO two back, we are inside an object NP
                # ("minimize data transfers with ...") — do not flip
                inside_object = i >= 2 and (tags[i - 2] in VERB_TAGS
                                            or tags[i - 2] == "TO")
                # guard 2: walk left over NP material; if the NP is
                # governed by a preposition we are inside a PP
                # ("for key code loops in the kernel") — do not flip
                j = i - 1
                while j >= 0 and tags[j] in ("DT", "PRP$", "JJ", "JJR",
                                             "JJS", "CD", "NN", "NNS",
                                             "NNP", "SYM"):
                    j -= 1
                inside_pp = j >= 0 and tags[j] in ("IN", "TO")
                if not inside_object and not inside_pp \
                        and prev_tag(i) in ("PRP", "NN", "NNS", "NNP") \
                        and next_tag(i) in ("DT", "PRP$", "JJ", "CD",
                                            "IN", "TO", "RB", "NN", "NNS"):
                    tags[i] = "VBZ" if low != base else "VBP"
                    continue
            # R9b: plural subject + base verb => VBP ("branches lower
            # warp efficiency", "kernels that exhibit ... scale well")
            if tag == "VB" and i > 0 and prev_tag(i) in ("NNS", "WDT", "WP"):
                tags[i] = "VBP"
                continue
            # R9c: comparative form that is also a verb, between a
            # plural subject and an object NP, reads verbally
            # ("divergent branches lower warp efficiency")
            if tag == "JJR" and low in BASE_VERBS \
                    and prev_tag(i) == "NNS" \
                    and next_tag(i) in ("NN", "NNS", "JJ", "DT", "PRP$"):
                tags[i] = "VBP"
                continue
            # R11: RB between DT and NN is adjectival ("the first step")
            if tag in ("RB",) and prev_tag(i) in ("DT", "PRP$") \
                    and next_tag(i) in NOUN_TAGS:
                tags[i] = "JJ"
                continue
            # R12: comparative adverb before a noun is JJR ("more
            # registers", "fewer instructions")
            if tag == "RBR" and next_tag(i) in NOUN_TAGS:
                tags[i] = "JJR"
                continue
            # R13: adjective between DT and IN reads as a noun head
            # ("a multiple of the warp size")
            if tag == "JJ" and prev_tag(i) in ("DT",) and next_tag(i) == "IN":
                tags[i] = "NN"
                continue
            # R14: VBG heading a nominal compound => NN ("incurring
            # pinning costs", "loop unrolling using a directive")
            if tag == "VBG" and prev_tag(i) in ("NN", "JJ", "VBG"):
                if next_tag(i) in NOUN_TAGS or next_tag(i) not in (
                        "DT", "PRP$", "NN", "NNS", "PRP"):
                    tags[i] = "NN"
                    continue
            # R15: VBG object at clause end => NN ("help reduce idling.")
            if tag == "VBG" and prev_tag(i) in VERB_TAGS \
                    and next_tag(i) in (".", ",", ":", "</S>"):
                tags[i] = "NN"
                continue
            # R16: comparative adjective in adverbial position
            # ("run substantially faster")
            if tag == "JJR" and prev_tag(i) in ("RB",) \
                    and next_tag(i) in (".", ",", ":", "</S>"):
                tags[i] = "RBR"
                continue
            # R17: singular-noun subject + base verb + adverbial/clause
            # end => VBP ("... intensity scale well")
            if tag == "VB" and prev_tag(i) == "NN" and next_tag(i) in (
                    "RB", ".", "</S>"):
                tags[i] = "VBP"
                continue
            # R18: pronominal "one" before a modal/verb ("One can use
            # the KMP_AFFINITY variable")
            if low == "one" and tag == "CD" and next_tag(i) in (
                    "MD", "VBZ", "VBP"):
                tags[i] = "PRP"
                continue
            # R10: "that"/"which" after noun is a relative pronoun WDT
            if low == "that" and prev_tag(i) in NOUN_TAGS:
                tags[i] = "WDT"
                continue
        return tags


_DEFAULT = RuleTagger()


def pos_tag(tokens: list[str] | str) -> list[tuple[str, str]]:
    """Tag *tokens* (a token list or a raw sentence string)."""
    if isinstance(tokens, str):
        return _DEFAULT.tag_sentence(tokens)
    return _DEFAULT.tag(tokens)
