"""Penn Treebank tagset subset and tag predicates.

The dependency parser and SRL only need coarse category queries
("is this a verb?"), so the helpers here centralize tag-class logic.
"""

from __future__ import annotations

#: The PTB tags this substrate can emit.
PTB_TAGS: frozenset[str] = frozenset(
    {
        "CC",   # coordinating conjunction
        "CD",   # cardinal number
        "DT",   # determiner
        "EX",   # existential there
        "FW",   # foreign word
        "IN",   # preposition / subordinating conjunction
        "JJ", "JJR", "JJS",      # adjective, comparative, superlative
        "LS",   # list item marker
        "MD",   # modal
        "NN", "NNS", "NNP", "NNPS",  # nouns
        "PDT",  # predeterminer
        "POS",  # possessive ending
        "PRP", "PRP$",  # pronouns
        "RB", "RBR", "RBS",  # adverbs
        "RP",   # particle
        "SYM",  # symbol / code token
        "TO",   # to
        "UH",   # interjection
        "VB", "VBD", "VBG", "VBN", "VBP", "VBZ",  # verbs
        "WDT", "WP", "WP$", "WRB",  # wh-words
        ".", ",", ":", "(", ")", "``", "''", "$", "#",  # punctuation
    }
)

VERB_TAGS: frozenset[str] = frozenset({"VB", "VBD", "VBG", "VBN", "VBP", "VBZ"})
NOUN_TAGS: frozenset[str] = frozenset({"NN", "NNS", "NNP", "NNPS"})
ADJ_TAGS: frozenset[str] = frozenset({"JJ", "JJR", "JJS"})
ADV_TAGS: frozenset[str] = frozenset({"RB", "RBR", "RBS", "WRB"})


def is_verb_tag(tag: str) -> bool:
    """True for any PTB verb tag (VB/VBD/VBG/VBN/VBP/VBZ)."""
    return tag in VERB_TAGS


def is_noun_tag(tag: str) -> bool:
    """True for any PTB noun tag (NN/NNS/NNP/NNPS)."""
    return tag in NOUN_TAGS


def is_adj_tag(tag: str) -> bool:
    """True for any PTB adjective tag (JJ/JJR/JJS)."""
    return tag in ADJ_TAGS


def to_wordnet_pos(tag: str) -> str:
    """Map a PTB tag to the lemmatizer's WordNet-style POS letter."""
    if tag in VERB_TAGS or tag == "MD":
        return "v"
    if tag in NOUN_TAGS:
        return "n"
    if tag in ADJ_TAGS:
        return "a"
    if tag in ADV_TAGS:
        return "r"
    return "x"
