"""Part-of-speech tagging substrate (CoreNLP-tagger replacement).

Two taggers are provided:

* :class:`~repro.tagging.tagger.RuleTagger` — deterministic
  lexicon + morphology + contextual-rule tagger; the default tagger
  used by the dependency parser.
* :class:`~repro.tagging.perceptron.PerceptronTagger` — a trainable
  averaged-perceptron tagger (Collins 2002) shipped with an embedded
  hand-tagged HPC-guide corpus; used for ablation and as a
  cross-check of the rule tagger.

Both emit Penn Treebank tags (see :mod:`repro.tagging.tagset`).
"""

from repro.tagging.tagset import PTB_TAGS, is_verb_tag, is_noun_tag, to_wordnet_pos
from repro.tagging.tagger import RuleTagger, pos_tag
from repro.tagging.perceptron import PerceptronTagger
from repro.tagging.brill import BrillTagger, BrillTrainer
from repro.tagging.evaluation import TaggerReport, evaluate_tagger, compare_taggers

__all__ = [
    "PTB_TAGS",
    "is_verb_tag",
    "is_noun_tag",
    "to_wordnet_pos",
    "RuleTagger",
    "pos_tag",
    "PerceptronTagger",
    "BrillTagger",
    "BrillTrainer",
    "TaggerReport",
    "evaluate_tagger",
    "compare_taggers",
]
