"""Tagging lexicon: word -> default tag plus ambiguity classes.

Seeded from the base-form word lists shared with the lemmatizer, the
closed-class function words of English, and the recurring vocabulary
of GPU / many-core programming guides.  For ambiguous words the
lexicon records the *set* of admissible tags; the contextual layer of
the rule tagger picks among them.
"""

from __future__ import annotations

from repro.textproc.wordlists import BASE_ADJECTIVES, BASE_NOUNS, BASE_VERBS

# -- closed classes ------------------------------------------------------

DETERMINERS = {
    "the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
    "these": "DT", "those": "DT", "each": "DT", "every": "DT",
    "some": "DT", "any": "DT", "no": "DT", "all": "PDT", "both": "DT",
    "either": "DT", "neither": "DT", "another": "DT", "such": "PDT",
}

PRONOUNS = {
    "i": "PRP", "you": "PRP", "he": "PRP", "she": "PRP", "it": "PRP",
    "we": "PRP", "they": "PRP", "them": "PRP", "him": "PRP",
    "her": "PRP$", "us": "PRP", "me": "PRP", "one": "PRP",
    "my": "PRP$", "your": "PRP$", "his": "PRP$", "its": "PRP$",
    "our": "PRP$", "their": "PRP$", "itself": "PRP", "themselves": "PRP",
    "oneself": "PRP", "yourself": "PRP",
}

MODALS = {
    "can": "MD", "could": "MD", "may": "MD", "might": "MD",
    "must": "MD", "shall": "MD", "should": "MD", "will": "MD",
    "would": "MD", "cannot": "MD",
}

PREPOSITIONS = {
    "in": "IN", "on": "IN", "at": "IN", "by": "IN", "for": "IN",
    "with": "IN", "about": "IN", "against": "IN", "between": "IN",
    "into": "IN", "through": "IN", "during": "IN", "before": "IN",
    "after": "IN", "above": "IN", "below": "IN", "from": "IN",
    "up": "IN", "down": "IN", "of": "IN", "off": "IN", "over": "IN",
    "under": "IN", "within": "IN", "without": "IN", "across": "IN",
    "per": "IN", "via": "IN", "upon": "IN", "among": "IN",
    "toward": "IN", "towards": "IN", "onto": "IN", "throughout": "IN",
    "outside": "IN", "inside": "IN", "beyond": "IN", "behind": "IN",
    "if": "IN", "because": "IN", "since": "IN", "while": "IN",
    "whereas": "IN", "although": "IN", "though": "IN", "unless": "IN",
    "until": "IN", "whether": "IN", "as": "IN", "than": "IN",
    "instead": "RB", "rather": "RB",
}

CONJUNCTIONS = {"and": "CC", "or": "CC", "but": "CC", "nor": "CC",
                "yet": "CC", "so": "CC", "plus": "CC"}

NUMBER_WORDS = {
    "zero": "CD", "one": "CD", "two": "CD", "three": "CD", "four": "CD",
    "five": "CD", "six": "CD", "seven": "CD", "eight": "CD",
    "nine": "CD", "ten": "CD", "dozen": "CD", "hundred": "CD",
    "thousand": "CD", "million": "CD", "billion": "CD",
}

WH_WORDS = {
    "which": "WDT", "what": "WP", "who": "WP", "whom": "WP",
    "whose": "WP$", "when": "WRB", "where": "WRB", "why": "WRB",
    "how": "WRB",
}

ADVERBS = {
    "not": "RB", "n't": "RB", "never": "RB", "always": "RB",
    "often": "RB", "usually": "RB", "typically": "RB",
    "frequently": "RB", "generally": "RB", "also": "RB",
    "therefore": "RB", "thus": "RB", "hence": "RB", "however": "RB",
    "moreover": "RB", "furthermore": "RB", "otherwise": "RB",
    "then": "RB", "here": "RB", "there": "EX", "again": "RB",
    "too": "RB", "very": "RB", "quite": "RB", "well": "RB",
    "even": "RB", "still": "RB", "already": "RB", "just": "RB",
    "only": "RB", "much": "RB", "more": "RBR", "most": "RBS",
    "less": "RBR", "least": "RBS", "further": "RB",
    "significantly": "RB", "substantially": "RB", "roughly": "RB",
    "approximately": "RB", "efficiently": "RB", "effectively": "RB",
    "carefully": "RB", "explicitly": "RB", "implicitly": "RB",
    "automatically": "RB", "dynamically": "RB", "statically": "RB",
    "concurrently": "RB", "sequentially": "RB", "independently": "RB",
    "directly": "RB", "indirectly": "RB", "easily": "RB",
    "possibly": "RB", "potentially": "RB", "particularly": "RB",
    "especially": "RB", "ideally": "RB", "alternatively": "RB",
    "consequently": "RB", "accordingly": "RB", "additionally": "RB",
    "instead": "RB", "first": "RB", "second": "RB", "finally": "RB",
    "once": "RB", "twice": "RB", "together": "RB", "whenever": "WRB",
    "wherever": "WRB", "below": "RB", "above": "RB",
}

BE_FORMS = {
    "be": "VB", "am": "VBP", "is": "VBZ", "are": "VBP", "was": "VBD",
    "were": "VBD", "been": "VBN", "being": "VBG",
}

HAVE_FORMS = {"have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG"}
DO_FORMS = {"do": "VBP", "does": "VBZ", "did": "VBD", "done": "VBN",
            "doing": "VBG"}

COMPARATIVES = {
    "better": "JJR", "best": "JJS", "worse": "JJR", "worst": "JJS",
    "faster": "JJR", "fastest": "JJS", "slower": "JJR", "slowest": "JJS",
    "higher": "JJR", "highest": "JJS", "lower": "JJR", "lowest": "JJS",
    "larger": "JJR", "largest": "JJS", "smaller": "JJR",
    "smallest": "JJS", "greater": "JJR", "greatest": "JJS",
    "fewer": "JJR", "fewest": "JJS", "bigger": "JJR", "biggest": "JJS",
    "earlier": "JJR", "easier": "JJR", "simpler": "JJR",
    "cheaper": "JJR", "deeper": "JJR", "shorter": "JJR",
    "longer": "JJR", "wider": "JJR", "tighter": "JJR",
}

SPECIAL = {
    "to": "TO",
    "'s": "POS",
    "e.g": "FW", "i.e": "FW", "etc": "FW", "vs": "FW",
}

# Common irregular past/participle forms in guide prose.
IRREGULAR_VERB_TAGS = {
    "written": "VBN", "wrote": "VBD", "chosen": "VBN", "chose": "VBD",
    "given": "VBN", "gave": "VBD", "taken": "VBN", "took": "VBD",
    "made": "VBN", "found": "VBN", "kept": "VBN", "held": "VBN",
    "led": "VBN", "left": "VBN", "met": "VBN", "read": "VBN",
    "run": "VB", "ran": "VBD", "set": "VB", "shown": "VBN",
    "known": "VBN", "seen": "VBN", "spent": "VBN", "built": "VBN",
    "hidden": "VBN", "meant": "VBN", "put": "VB", "split": "VB",
    "understood": "VBN", "said": "VBD", "became": "VBD", "began": "VBD",
    "grew": "VBD", "grown": "VBN", "fell": "VBD", "fallen": "VBN",
}

# HPC proper nouns / product names commonly capitalized in guides.
PROPER_NOUNS = {
    "nvidia", "amd", "intel", "cuda", "opencl", "openmp", "mpi",
    "xeon", "phi", "gpu", "gpus", "cpu", "cpus", "api", "sdk",
    "simd", "simt", "sm", "dram", "sram", "pcie", "numa", "gcn",
    "nvvp", "nvprof", "sgpr", "vgpr", "hbm", "isa", "os", "fpga",
}


def _build_default_lexicon() -> dict[str, str]:
    lexicon: dict[str, str] = {}
    # open classes first so closed classes can override
    for noun in BASE_NOUNS:
        lexicon[noun] = "NN"
    for adjective in BASE_ADJECTIVES:
        lexicon[adjective] = "JJ"
    for verb in BASE_VERBS:
        # default verbs to base form; contextual rules adjust
        lexicon[verb] = "VB"
    # noun/verb clashes: words in both lists default to NN; the
    # contextual layer re-tags verbs in verbal positions.
    for word in BASE_NOUNS & BASE_VERBS:
        lexicon[word] = "NN"
    # adjective/verb clashes default to the adjectival reading, which
    # dominates in guide prose ("the slow path", "a clean design").
    for word in BASE_ADJECTIVES & BASE_VERBS:
        lexicon[word] = "JJ"
    lexicon["other"] = "JJ"
    for table in (
        DETERMINERS, PRONOUNS, MODALS, PREPOSITIONS, CONJUNCTIONS,
        NUMBER_WORDS, WH_WORDS, ADVERBS, BE_FORMS, HAVE_FORMS, DO_FORMS,
        COMPARATIVES, SPECIAL, IRREGULAR_VERB_TAGS,
    ):
        lexicon.update(table)
    for name in PROPER_NOUNS:
        lexicon[name] = "NNP"
    return lexicon


#: word -> most likely tag (out of context).
DEFAULT_TAGS: dict[str, str] = _build_default_lexicon()

#: words that admit both noun and verb readings.
NOUN_VERB_AMBIGUOUS: frozenset[str] = frozenset(BASE_NOUNS & BASE_VERBS)
