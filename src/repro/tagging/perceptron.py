"""Averaged perceptron POS tagger (Collins 2002).

A trainable tagger with the same feature template family as the
well-known textblob/NLTK ``PerceptronTagger``.  It serves two roles in
the reproduction:

* an *ablation point*: the paper's argument is that Egeria tolerates
  imperfect NLP; swapping taggers quantifies how recognition quality
  depends on tagging accuracy;
* *self-training*: :meth:`PerceptronTagger.train_from_tagger`
  bootstraps from the deterministic rule tagger over an unlabeled
  corpus, mirroring how statistical NLP tools are built on silver
  annotations.

Weights are plain dicts; averaging uses the standard lazy-update
trick so training is O(features touched), not O(all weights).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

import numpy as np

START = ("-START-", "-START2-")
END = ("-END-", "-END2-")


def _normalize(word: str) -> str:
    """Feature-space normalization of a raw token."""
    if "-" in word and word[0] != "-":
        return "!HYPHEN"
    if word.isdigit():
        return "!DIGITS" if len(word) == 4 else "!YEAR" if False else "!DIGITS"
    if word[0].isdigit():
        return "!DIGITS"
    return word.lower()


class AveragedPerceptron:
    """Multiclass averaged perceptron over sparse binary features."""

    def __init__(self) -> None:
        self.weights: dict[str, dict[str, float]] = {}
        self.classes: set[str] = set()
        self._totals: dict[tuple[str, str], float] = defaultdict(float)
        self._tstamps: dict[tuple[str, str], int] = defaultdict(int)
        self.i = 0

    def predict(self, features: dict[str, int]) -> str:
        scores: dict[str, float] = defaultdict(float)
        for feat, value in features.items():
            if feat not in self.weights or value == 0:
                continue
            for label, weight in self.weights[feat].items():
                scores[label] += value * weight
        # scan classes in sorted order with a name tie-break: the
        # winning label is then a pure function of the scores, never of
        # set iteration order (which varies with PYTHONHASHSEED)
        return max(sorted(self.classes),
                   key=lambda label: (scores[label], label))

    def update(self, truth: str, guess: str, features: dict[str, int]) -> None:
        self.i += 1
        if truth == guess:
            return
        for feat in features:
            weights = self.weights.setdefault(feat, {})
            self._upd_feat(truth, feat, weights.get(truth, 0.0), 1.0)
            self._upd_feat(guess, feat, weights.get(guess, 0.0), -1.0)

    def _upd_feat(self, label: str, feat: str, weight: float, delta: float) -> None:
        key = (feat, label)
        self._totals[key] += (self.i - self._tstamps[key]) * weight
        self._tstamps[key] = self.i
        self.weights[feat][label] = weight + delta

    def average_weights(self) -> None:
        # sorted feature/label iteration: the averaged table is rebuilt
        # in canonical key order, so two trainings from the same seed
        # serialize to byte-identical JSON regardless of the insertion
        # order the update path happened to produce
        averaged_table: dict[str, dict[str, float]] = {}
        for feat in sorted(self.weights):
            weights = self.weights[feat]
            new: dict[str, float] = {}
            for label in sorted(weights):
                weight = weights[label]
                key = (feat, label)
                total = self._totals[key] + (self.i - self._tstamps[key]) * weight
                averaged = round(total / max(self.i, 1), 3)
                if averaged:
                    new[label] = averaged
            averaged_table[feat] = new
        self.weights = averaged_table


class PerceptronTagger:
    """Trainable POS tagger with greedy left-to-right decoding."""

    def __init__(self) -> None:
        self.model = AveragedPerceptron()
        self.tagdict: dict[str, str] = {}
        self._trained = False

    # -- training --------------------------------------------------------

    def train(
        self,
        sentences: Sequence[Sequence[tuple[str, str]]],
        iterations: int = 5,
        seed: int = 1,
    ) -> None:
        """Train on tagged sentences for *iterations* epochs."""
        self._make_tagdict(sentences)
        self.model.classes = {tag for sent in sentences for _, tag in sent}
        rng = np.random.default_rng(seed)
        order = np.arange(len(sentences))
        for _ in range(iterations):
            rng.shuffle(order)
            for idx in order:
                sentence = sentences[idx]
                words = [w for w, _ in sentence]
                context = (
                    list(START) + [_normalize(w) for w in words] + list(END)
                )
                prev, prev2 = START
                for i, (word, truth) in enumerate(sentence):
                    guess = self.tagdict.get(word.lower())
                    if guess is None:
                        feats = self._features(i, word, context, prev, prev2)
                        guess = self.model.predict(feats)
                        self.model.update(truth, guess, feats)
                    prev2, prev = prev, guess
        self.model.average_weights()
        self._trained = True

    def train_from_tagger(
        self,
        tagger,
        sentences: Iterable[Sequence[str]],
        iterations: int = 5,
        seed: int = 1,
    ) -> None:
        """Self-train on *tagger*'s silver annotations of raw sentences."""
        silver = [tagger.tag(list(tokens)) for tokens in sentences]
        silver = [s for s in silver if s]
        self.train(silver, iterations=iterations, seed=seed)

    # -- inference ---------------------------------------------------------

    def tag(self, tokens: Sequence[str]) -> list[tuple[str, str]]:
        """Tag a tokenized sentence; requires a trained model."""
        if not self._trained:
            raise RuntimeError("PerceptronTagger.tag called before train()")
        output: list[tuple[str, str]] = []
        context = list(START) + [_normalize(w) for w in tokens] + list(END)
        prev, prev2 = START
        for i, word in enumerate(tokens):
            tag = self.tagdict.get(word.lower())
            if tag is None:
                feats = self._features(i, word, context, prev, prev2)
                tag = self.model.predict(feats)
            output.append((word, tag))
            prev2, prev = prev, tag
        return output

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        """Serialize the trained model (weights + tagdict) as JSON."""
        import json

        if not self._trained:
            raise RuntimeError("cannot save an untrained tagger")
        payload = {
            "weights": self.model.weights,
            "classes": sorted(self.model.classes),
            "tagdict": self.tagdict,
        }
        with open(path, "w", encoding="utf-8") as handle:
            # canonical key order — byte-stable across runs and
            # PYTHONHASHSEED values (average_weights already rebuilds
            # the table sorted; sort_keys makes the file contract
            # independent of that implementation detail)
            json.dump(payload, handle, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "PerceptronTagger":
        """Load a tagger previously written by :meth:`save`."""
        import json

        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        tagger = cls()
        tagger.model.weights = {
            feat: dict(label_weights)
            for feat, label_weights in payload["weights"].items()
        }
        tagger.model.classes = set(payload["classes"])
        tagger.tagdict = dict(payload["tagdict"])
        tagger._trained = True
        return tagger

    def accuracy(
        self, sentences: Sequence[Sequence[tuple[str, str]]]
    ) -> float:
        """Token-level accuracy against gold *sentences*."""
        correct = total = 0
        for sentence in sentences:
            words = [w for w, _ in sentence]
            predicted = self.tag(words)
            for (_, gold), (_, guess) in zip(sentence, predicted):
                total += 1
                correct += gold == guess
        return correct / total if total else 0.0

    # -- internals -----------------------------------------------------------

    def _make_tagdict(
        self, sentences: Sequence[Sequence[tuple[str, str]]]
    ) -> None:
        """Freeze unambiguous frequent words into a lookup dict."""
        counts: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for sentence in sentences:
            for word, tag in sentence:
                counts[word.lower()][tag] += 1
        freq_thresh, ambiguity_thresh = 3, 0.97
        for word, tag_freqs in counts.items():
            tag, mode = max(tag_freqs.items(), key=lambda kv: kv[1])
            total = sum(tag_freqs.values())
            if total >= freq_thresh and mode / total >= ambiguity_thresh:
                self.tagdict[word] = tag

    @staticmethod
    def _features(
        i: int, word: str, context: list[str], prev: str, prev2: str
    ) -> dict[str, int]:
        features: dict[str, int] = defaultdict(int)

        def add(name: str, *args: str) -> None:
            features[" ".join((name,) + args)] += 1

        i += len(START)
        add("bias")
        add("i suffix", word[-3:])
        add("i pref1", word[0])
        add("i-1 tag", prev)
        add("i-2 tag", prev2)
        add("i tag+i-2 tag", prev, prev2)
        add("i word", context[i])
        add("i-1 tag+i word", prev, context[i])
        add("i-1 word", context[i - 1])
        add("i-1 suffix", context[i - 1][-3:])
        add("i-2 word", context[i - 2])
        add("i+1 word", context[i + 1])
        add("i+1 suffix", context[i + 1][-3:])
        add("i+2 word", context[i + 2])
        return dict(features)
