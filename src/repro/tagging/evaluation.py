"""Tagger evaluation tooling: accuracy, per-tag P/R/F, confusion pairs.

Shared harness for comparing the three taggers (rule, perceptron,
Brill) on gold corpora — the kind of report one needs before trusting
a tagger swap in the recognition pipeline.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

TaggedSentence = Sequence[tuple[str, str]]


@dataclass
class TaggerReport:
    """Evaluation result of one tagger on one gold corpus."""

    accuracy: float
    total: int
    per_tag: dict[str, tuple[float, float, float]] = field(
        default_factory=dict)
    confusions: list[tuple[str, str, int]] = field(default_factory=list)

    def worst_tags(self, k: int = 5) -> list[tuple[str, float]]:
        """The k gold tags with the lowest F-measure."""
        ranked = sorted(
            ((tag, f) for tag, (_, _, f) in self.per_tag.items()),
            key=lambda item: item[1])
        return ranked[:k]


def evaluate_tagger(
    tagger, gold: Sequence[TaggedSentence]
) -> TaggerReport:
    """Tag every gold sentence and compile a :class:`TaggerReport`.

    *tagger* needs a ``tag(tokens) -> list[(word, tag)]`` method — all
    three taggers in :mod:`repro.tagging` qualify.
    """
    correct = total = 0
    gold_counts: Counter = Counter()
    predicted_counts: Counter = Counter()
    true_positive: Counter = Counter()
    confusion: Counter = Counter()

    for sentence in gold:
        words = [word for word, _ in sentence]
        predictions = tagger.tag(words)
        for (_, gold_tag), (_, guess) in zip(sentence, predictions):
            total += 1
            gold_counts[gold_tag] += 1
            predicted_counts[guess] += 1
            if gold_tag == guess:
                correct += 1
                true_positive[gold_tag] += 1
            else:
                confusion[(gold_tag, guess)] += 1

    per_tag: dict[str, tuple[float, float, float]] = {}
    for tag in gold_counts:
        tp = true_positive[tag]
        precision = tp / predicted_counts[tag] if predicted_counts[tag] else 0.0
        recall = tp / gold_counts[tag]
        f_measure = (2 * precision * recall / (precision + recall)
                     if precision + recall else 0.0)
        per_tag[tag] = (precision, recall, f_measure)

    confusions = sorted(
        ((gold_tag, guess, count)
         for (gold_tag, guess), count in confusion.items()),
        key=lambda item: -item[2])
    return TaggerReport(
        accuracy=correct / total if total else 0.0,
        total=total,
        per_tag=per_tag,
        confusions=confusions,
    )


def compare_taggers(
    taggers: dict[str, object], gold: Sequence[TaggedSentence]
) -> dict[str, TaggerReport]:
    """Evaluate several taggers on the same corpus."""
    return {name: evaluate_tagger(tagger, gold)
            for name, tagger in taggers.items()}
