"""Brill transformation-based tagger trainer (Brill 1992/1995).

The rule tagger's contextual layer is hand-written; this module makes
that layer *learnable*: starting from any baseline tagger's output,
the trainer greedily learns transformation rules of the classic Brill
templates ("change tag A to B when the previous tag is T", "... when
one of the next two words is W", ...) that most reduce error on a
tagged corpus.

This supplies the third tagging option alongside the deterministic
:class:`~repro.tagging.tagger.RuleTagger` and the statistical
:class:`~repro.tagging.perceptron.PerceptronTagger`, and quantifies
how far a learned contextual layer can push a lexicon baseline with
the tiny amounts of annotation an HPC practitioner could produce.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Sequence
from dataclasses import dataclass

TaggedSentence = Sequence[tuple[str, str]]


@dataclass(frozen=True)
class TransformationRule:
    """Change ``from_tag`` to ``to_tag`` when the context matches."""

    from_tag: str
    to_tag: str
    template: str   # one of the TEMPLATES keys
    value: str      # the tag/word the template tests for

    def applies(self, words: list[str], tags: list[str], i: int) -> bool:
        if tags[i] != self.from_tag:
            return False
        return TEMPLATES[self.template](words, tags, i, self.value)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.from_tag}->{self.to_tag} if "
                f"{self.template}={self.value}")


def _prev_tag(words, tags, i, value):
    return i > 0 and tags[i - 1] == value


def _next_tag(words, tags, i, value):
    return i + 1 < len(tags) and tags[i + 1] == value


def _prev2_tag(words, tags, i, value):
    return i > 1 and tags[i - 2] == value


def _prev_1or2_tag(words, tags, i, value):
    return (i > 0 and tags[i - 1] == value) or (i > 1 and tags[i - 2] == value)


def _next_1or2_tag(words, tags, i, value):
    n = len(tags)
    return (i + 1 < n and tags[i + 1] == value) or \
           (i + 2 < n and tags[i + 2] == value)


def _prev_word(words, tags, i, value):
    return i > 0 and words[i - 1].lower() == value


def _next_word(words, tags, i, value):
    return i + 1 < len(words) and words[i + 1].lower() == value


def _current_word(words, tags, i, value):
    return words[i].lower() == value


TEMPLATES: dict[str, Callable] = {
    "prev_tag": _prev_tag,
    "next_tag": _next_tag,
    "prev2_tag": _prev2_tag,
    "prev_1or2_tag": _prev_1or2_tag,
    "next_1or2_tag": _next_1or2_tag,
    "prev_word": _prev_word,
    "next_word": _next_word,
    "current_word": _current_word,
}


class BrillTagger:
    """A baseline tagger plus an ordered list of learned rules."""

    def __init__(self, baseline, rules: list[TransformationRule]
                 | None = None) -> None:
        self.baseline = baseline
        self.rules: list[TransformationRule] = list(rules or [])

    def tag(self, tokens: Sequence[str]) -> list[tuple[str, str]]:
        words = list(tokens)
        tags = [tag for _, tag in self.baseline.tag(words)]
        for rule in self.rules:
            for i in range(len(tags)):
                if rule.applies(words, tags, i):
                    tags[i] = rule.to_tag
        return list(zip(words, tags))

    def accuracy(self, gold: Sequence[TaggedSentence]) -> float:
        correct = total = 0
        for sentence in gold:
            words = [w for w, _ in sentence]
            predicted = self.tag(words)
            for (_, gold_tag), (_, guess) in zip(sentence, predicted):
                total += 1
                correct += gold_tag == guess
        return correct / total if total else 0.0


class BrillTrainer:
    """Greedy error-driven rule learner."""

    def __init__(self, baseline, max_rules: int = 30,
                 min_score: int = 2) -> None:
        self.baseline = baseline
        self.max_rules = max_rules
        self.min_score = min_score

    def train(self, gold: Sequence[TaggedSentence]) -> BrillTagger:
        """Learn up to ``max_rules`` transformations on *gold*."""
        corpora = []
        for sentence in gold:
            words = [w for w, _ in sentence]
            gold_tags = [t for _, t in sentence]
            current = [t for _, t in self.baseline.tag(words)]
            corpora.append((words, current, gold_tags))

        rules: list[TransformationRule] = []
        while len(rules) < self.max_rules:
            best_rule, best_score = self._best_candidate(corpora)
            if best_rule is None or best_score < self.min_score:
                break
            rules.append(best_rule)
            for words, current, _ in corpora:
                for i in range(len(current)):
                    if best_rule.applies(words, current, i):
                        current[i] = best_rule.to_tag
        return BrillTagger(self.baseline, rules)

    def _best_candidate(self, corpora):
        """Two-phase candidate selection (exact Brill scoring).

        Phase 1 proposes rules from error sites (transform the wrong
        tag into the gold tag under the observed context).  Phase 2
        computes each promising candidate's *exact* net score — errors
        fixed minus correct tags broken — by scanning the corpus, so
        an applied rule is guaranteed to reduce training error.
        """
        fixes: dict[TransformationRule, int] = defaultdict(int)
        for words, current, gold_tags in corpora:
            for i, (tag, gold_tag) in enumerate(zip(current, gold_tags)):
                if tag == gold_tag:
                    continue
                for rule in self._candidate_rules(
                        words, current, i, tag, gold_tag):
                    fixes[rule] += 1
        if not fixes:
            return None, 0

        shortlist = sorted(fixes, key=lambda r: (-fixes[r], str(r)))[:80]
        best_rule, best_score = None, -1
        for rule in shortlist:
            score = 0
            for words, current, gold_tags in corpora:
                for i in range(len(current)):
                    if not rule.applies(words, current, i):
                        continue
                    if gold_tags[i] == rule.to_tag:
                        score += 1
                    elif current[i] == gold_tags[i]:
                        score -= 1
            if score > best_score:
                best_rule, best_score = rule, score
        return best_rule, best_score

    @staticmethod
    def _candidate_rules(words, tags, i, from_tag, to_tag):
        n = len(tags)
        if i > 0:
            yield TransformationRule(from_tag, to_tag, "prev_tag",
                                     tags[i - 1])
            yield TransformationRule(from_tag, to_tag, "prev_word",
                                     words[i - 1].lower())
            yield TransformationRule(from_tag, to_tag, "prev_1or2_tag",
                                     tags[i - 1])
        if i > 1:
            yield TransformationRule(from_tag, to_tag, "prev2_tag",
                                     tags[i - 2])
        if i + 1 < n:
            yield TransformationRule(from_tag, to_tag, "next_tag",
                                     tags[i + 1])
            yield TransformationRule(from_tag, to_tag, "next_word",
                                     words[i + 1].lower())
            yield TransformationRule(from_tag, to_tag, "next_1or2_tag",
                                     tags[i + 1])
        yield TransformationRule(from_tag, to_tag, "current_word",
                                 words[i].lower())
