"""NVVP-style performance report model.

An NVVP report "usually has four sections.  The first section provides
an overview of the performance issues while the later three sections
each describe the problems in each of the three main aspects:
instruction and memory latency; compute resources; memory bandwidth"
(paper §4.1).  Issue subsections carry the ``Optimization:`` marker
the advising tool keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SECTION_NAMES = (
    "Overview",
    "Instruction and Memory Latency",
    "Compute Resources",
    "Memory Bandwidth",
)


@dataclass(frozen=True)
class PerformanceIssue:
    """One issue subsection of an NVVP report."""

    title: str
    description: str

    def query_text(self) -> str:
        """Title and description combined, as the paper forms queries:
        'Each title and its description are combined to form a query'."""
        return f"{self.title}. {self.description}"


@dataclass
class ReportSection:
    """One of the four report sections; may be empty ("Some of the
    later three sections could be empty if no issues exist")."""

    name: str
    issues: list[PerformanceIssue] = field(default_factory=list)


@dataclass
class NVVPReport:
    """A complete report for one program execution."""

    program: str
    kernel: str
    sections: list[ReportSection] = field(default_factory=list)

    def issues(self) -> list[PerformanceIssue]:
        """All issues across the three analysis sections (not Overview —
        the overview repeats them in summary form)."""
        out: list[PerformanceIssue] = []
        for section in self.sections:
            if section.name == "Overview":
                continue
            out.extend(section.issues)
        return out

    def to_text(self) -> str:
        """Render the textual report the parser consumes."""
        lines = [
            f"NVIDIA Visual Profiler Report",
            f"Program: {self.program}",
            f"Kernel: {self.kernel}",
            "=" * 60,
        ]
        for section in self.sections:
            lines.append("")
            lines.append(f"Section: {section.name}")
            lines.append("-" * 60)
            if not section.issues:
                lines.append("No issues identified in this section.")
                continue
            for issue in section.issues:
                if section.name == "Overview":
                    lines.append(f"* {issue.title}")
                    continue
                lines.append(f"Optimization: {issue.title}")
                lines.append(f"  {issue.description}")
        return "\n".join(lines)
