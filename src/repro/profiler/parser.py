"""NVVP report parser.

"When fed with an NVVP report, our CUDA Adviser searches within each
section and takes subsections that contain the 'Optimization:'
identifier as performance issue-related contents ...  Each title and
its description are combined to form a query" (paper §4.1).  The
parser implements exactly that regular-expression-based extraction.
"""

from __future__ import annotations

import re

from repro.profiler.report import PerformanceIssue

_OPTIMIZATION_LINE = re.compile(r"^Optimization:\s*(?P<title>.+?)\s*$")
_SECTION_LINE = re.compile(r"^Section:\s*(?P<name>.+?)\s*$")


class ReportParseError(ValueError):
    """The report text is not a parseable NVVP report.

    Raised instead of letting ``IndexError``/``KeyError``/``TypeError``
    escape on malformed input, so callers (the web upload path, the
    CLI ``report`` subcommand) can map it to a clean 400-style error.
    """


class NVVPReportParser:
    """Extract performance issues from NVVP report text."""

    def extract_issues(self, text: str) -> list[PerformanceIssue]:
        """All ``Optimization:``-marked issues with their descriptions.

        The description is the indented text following the marker line,
        up to the next marker, section header or blank-line boundary.
        Raises :class:`ReportParseError` on non-text or binary input
        and on marker lines without a title.
        """
        if not isinstance(text, str):
            raise ReportParseError(
                f"report must be text, got {type(text).__name__}")
        if "\x00" in text:
            raise ReportParseError("report contains binary data")
        issues: list[PerformanceIssue] = []
        title: str | None = None
        description: list[str] = []

        def flush() -> None:
            nonlocal title, description
            if title is not None:
                issues.append(
                    PerformanceIssue(title, " ".join(description).strip()))
            title, description = None, []

        for number, line in enumerate(text.splitlines(), start=1):
            stripped_line = line.strip()
            if stripped_line.startswith("Optimization:"):
                marker = _OPTIMIZATION_LINE.match(stripped_line)
                if marker is None:
                    raise ReportParseError(
                        f"line {number}: 'Optimization:' marker "
                        "without a title")
                flush()
                title = marker.group("title")
                continue
            if _SECTION_LINE.match(line.strip()):
                flush()
                continue
            if title is not None:
                stripped = line.strip()
                if stripped:
                    description.append(stripped)
                elif description:
                    flush()
        flush()
        return issues

    def extract_queries(self, text: str) -> list[str]:
        """Query strings (title + description) for the recommender."""
        return [issue.query_text() for issue in self.extract_issues(text)]


_DEFAULT = NVVPReportParser()


def extract_issues(text: str) -> list[PerformanceIssue]:
    """Extract issues with a shared parser instance."""
    return _DEFAULT.extract_issues(text)
