"""NVVP report parser.

"When fed with an NVVP report, our CUDA Adviser searches within each
section and takes subsections that contain the 'Optimization:'
identifier as performance issue-related contents ...  Each title and
its description are combined to form a query" (paper §4.1).  The
parser implements exactly that regular-expression-based extraction.
"""

from __future__ import annotations

import re

from repro.profiler.report import PerformanceIssue

_OPTIMIZATION_LINE = re.compile(r"^Optimization:\s*(?P<title>.+?)\s*$")
_SECTION_LINE = re.compile(r"^Section:\s*(?P<name>.+?)\s*$")


class NVVPReportParser:
    """Extract performance issues from NVVP report text."""

    def extract_issues(self, text: str) -> list[PerformanceIssue]:
        """All ``Optimization:``-marked issues with their descriptions.

        The description is the indented text following the marker line,
        up to the next marker, section header or blank-line boundary.
        """
        issues: list[PerformanceIssue] = []
        title: str | None = None
        description: list[str] = []

        def flush() -> None:
            nonlocal title, description
            if title is not None:
                issues.append(
                    PerformanceIssue(title, " ".join(description).strip()))
            title, description = None, []

        for line in text.splitlines():
            marker = _OPTIMIZATION_LINE.match(line.strip()) \
                if line.strip().startswith("Optimization:") else None
            if marker:
                flush()
                title = marker.group("title")
                continue
            if _SECTION_LINE.match(line.strip()):
                flush()
                continue
            if title is not None:
                stripped = line.strip()
                if stripped:
                    description.append(stripped)
                elif description:
                    flush()
        flush()
        return issues

    def extract_queries(self, text: str) -> list[str]:
        """Query strings (title + description) for the recommender."""
        return [issue.query_text() for issue in self.extract_issues(text)]


_DEFAULT = NVVPReportParser()


def extract_issues(text: str) -> list[PerformanceIssue]:
    """Extract issues with a shared parser instance."""
    return _DEFAULT.extract_issues(text)
