"""Profiler-report substrate (NVIDIA Visual Profiler stand-in).

The paper's advising tools accept NVVP performance reports as queries
(§3.2, §4.1): the tool regex-scans the report for subsections carrying
the ``Optimization:`` marker and turns each into a retrieval query.
Real NVVP needs NVIDIA hardware, so this package provides

* a faithful textual **report model** (four sections: overview,
  instruction & memory latency, compute resources, memory bandwidth),
* a **generator** producing the reports of the paper's four benchmark
  programs and the case-study kernel,
* the **parser** that extracts performance issues exactly the way the
  paper describes, and
* an analytical **GPU kernel cost model** used by the user-study
  simulation (paper Table 5) to translate applied optimizations into
  speedups on two device models.
"""

from repro.profiler.report import NVVPReport, PerformanceIssue, ReportSection
from repro.profiler.generator import (
    REPORT_PROGRAMS,
    generate_report,
    case_study_report,
)
from repro.profiler.parser import (
    NVVPReportParser,
    ReportParseError,
    extract_issues,
)
from repro.profiler.perf_report import HotSpot, PerfReportParser
from repro.profiler.gpu_model import GPUDevice, GPUKernelModel, OPTIMIZATIONS

__all__ = [
    "NVVPReport",
    "PerformanceIssue",
    "ReportSection",
    "REPORT_PROGRAMS",
    "generate_report",
    "case_study_report",
    "NVVPReportParser",
    "ReportParseError",
    "extract_issues",
    "HotSpot",
    "PerfReportParser",
    "GPUDevice",
    "GPUKernelModel",
    "OPTIMIZATIONS",
]
