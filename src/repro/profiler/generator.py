"""Synthetic NVVP report generator.

Produces the profiler reports the paper evaluates with: the four CUDA
benchmark programs of §4.2 (Table 6) and the case-study sparse-matrix
normalization kernel of §4.1 (Table 3).  Issue titles match the
paper's tables verbatim; descriptions paraphrase the NVVP guided-
analysis text the paper excerpts.
"""

from __future__ import annotations

from repro.profiler.report import (
    NVVPReport,
    PerformanceIssue,
    ReportSection,
    SECTION_NAMES,
)

_LATENCY, _COMPUTE, _BANDWIDTH = SECTION_NAMES[1], SECTION_NAMES[2], SECTION_NAMES[3]

# program name -> list of (section, title, description)
REPORT_PROGRAMS: dict[str, list[tuple[str, str, str]]] = {
    # a K-Nearest Neighbor program with thread divergence in the kernel
    "knnjoin": [
        (_COMPUTE,
         "Low Warp Execution Efficiency",
         "Threads in a warp should have the same branching behavior; "
         "reduce intra-warp divergence and divergent branches to "
         "increase warp execution efficiency."),
        (_COMPUTE,
         "Divergent Branches",
         "Divergent branches lower warp execution efficiency; rewrite "
         "controlling conditions and remove divergent branches in the "
         "kernel."),
    ],
    # knnjoin after task reordering to reduce thread divergence
    "knnjoin_opt": [
        (_BANDWIDTH,
         "Global Memory Alignment and Access Pattern",
         "Global memory accesses should be aligned and coalesced; "
         "improve the alignment and access pattern of global memory "
         "operations, pad arrays to the aligned pitch."),
    ],
    # a matrix transpose with many non-coalesced memory accesses
    "trans": [
        (_COMPUTE,
         "GPU Utilization is Limited by Memory Instruction Execution",
         "Too many memory instructions and transactions are executed; "
         "rearrange memory access instructions, combine loads into "
         "fewer transactions, and coalesce accesses of threads in a "
         "warp."),
        (_LATENCY,
         "Instruction Latencies may be Limiting Performance",
         "Increase resident warps, occupancy and instruction-level "
         "parallelism to hide instruction latency; tune the dimensions "
         "of thread blocks and expose independent instructions per "
         "thread."),
    ],
    # trans after optimizing memory accesses via 2D surface memory
    "trans_opt": [
        (_BANDWIDTH,
         "GPU Utilization is Limited by Memory Bandwidth",
         "The kernel is memory bandwidth bound; reduce data transfers "
         "from device memory, stage reused data in shared memory tiles, "
         "use caches to increase memory throughput."),
    ],
    # the case-study sparse matrix normalization kernel (norm.cu)
    "norm": [
        (_COMPUTE,
         "GPU Utilization May Be Limited By Register Usage",
         "Theoretical occupancy is less than 100% but is large enough "
         "that increasing occupancy may not improve performance. The "
         "kernel uses 31 registers for each thread (7936 registers for "
         "each block); register usage limits the number of resident "
         "blocks per multiprocessor."),
        (_COMPUTE,
         "Divergent Branches",
         "Compute resources are used most efficiently when all threads "
         "in a warp have the same branching behavior. When this does not "
         "occur the branch is said to be divergent. Divergent branches "
         "lower warp execution efficiency which leads to inefficient use "
         "of the GPU's compute resources."),
    ],
}


def generate_report(program: str) -> NVVPReport:
    """Build the :class:`NVVPReport` for one of the known programs."""
    try:
        issue_specs = REPORT_PROGRAMS[program]
    except KeyError:
        raise ValueError(
            f"unknown program {program!r}; known: "
            f"{sorted(REPORT_PROGRAMS)}") from None
    sections = {name: ReportSection(name) for name in SECTION_NAMES}
    for section_name, title, description in issue_specs:
        sections[section_name].issues.append(
            PerformanceIssue(title, description))
    # the Overview section summarizes every issue title
    sections["Overview"].issues = [
        PerformanceIssue(title, "") for _, title, _ in issue_specs
    ]
    kernel = {
        "knnjoin": "knn_join_kernel",
        "knnjoin_opt": "knn_join_kernel",
        "trans": "transpose_kernel",
        "trans_opt": "transpose_kernel",
        "norm": "normalize_kernel",
    }[program]
    return NVVPReport(
        program=f"{program}.cu",
        kernel=kernel,
        sections=[sections[name] for name in SECTION_NAMES],
    )


def case_study_report() -> NVVPReport:
    """The §4.1 case-study report (sparse-matrix normalization)."""
    return generate_report("norm")
