"""Linux ``perf``-style CPU profiler report support.

The paper's future work: "Support to other commonly used profiling
reports will be added in the future" (§3.2).  This module implements
that extension for the most common CPU-side profile format: a
``perf report``-like table of overhead percentages per symbol plus
annotated bottleneck notes.

The parser converts a hot-spot table into retrieval queries the same
way the NVVP path does: each hot symbol with notable overhead becomes
a query combining its name heuristically mapped to optimization
vocabulary (e.g. a symbol containing ``memcpy`` queries memory
transfer advice, a ``spin``/``lock`` symbol queries synchronization
advice).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_ROW = re.compile(
    r"^\s*(?P<overhead>\d{1,3}\.\d{2})%\s+(?P<command>\S+)\s+"
    r"(?P<object>\S+)\s+\[[.k]\]\s+(?P<symbol>\S+)\s*$")

#: symbol-substring -> optimization topic phrasing for the query
SYMBOL_HINTS: tuple[tuple[str, str], ...] = (
    ("memcpy", "reduce memory copies and data transfers"),
    ("memmove", "reduce memory copies and data transfers"),
    ("malloc", "reduce allocation overhead and memory management cost"),
    ("free", "reduce allocation overhead and memory management cost"),
    ("lock", "reduce lock contention and synchronization overhead"),
    ("spin", "reduce lock contention and synchronization overhead"),
    ("mutex", "reduce lock contention and synchronization overhead"),
    ("barrier", "reduce synchronization overhead at barriers"),
    ("wait", "reduce idle waiting and synchronization overhead"),
    ("sqrt", "reduce expensive arithmetic instructions"),
    ("exp", "reduce expensive arithmetic instructions"),
    ("pow", "reduce expensive arithmetic instructions"),
    ("gather", "improve memory access patterns and vectorization"),
    ("scatter", "improve memory access patterns and vectorization"),
    ("stall", "hide latency and reduce pipeline stalls"),
    ("cache", "improve cache utilization and locality"),
    ("tlb", "improve page locality and reduce TLB misses"),
)


@dataclass(frozen=True)
class HotSpot:
    """One row of a perf-style overhead table."""

    overhead: float   # percent
    command: str
    shared_object: str
    symbol: str

    def query_text(self) -> str:
        """A retrieval query for this hot spot."""
        hints = [phrase for fragment, phrase in SYMBOL_HINTS
                 if fragment in self.symbol.lower()]
        hint_text = "; ".join(hints) if hints else \
            "optimize the hot function"
        return (f"{self.symbol} consumes {self.overhead:.2f}% of "
                f"execution time; {hint_text}.")


class PerfReportParser:
    """Parse ``perf report``-style text into hot spots and queries."""

    def __init__(self, min_overhead: float = 5.0) -> None:
        self.min_overhead = min_overhead

    def extract_hotspots(self, text: str) -> list[HotSpot]:
        """All table rows at or above the overhead threshold."""
        spots: list[HotSpot] = []
        for line in text.splitlines():
            match = _ROW.match(line)
            if match is None:
                continue
            overhead = float(match.group("overhead"))
            if overhead < self.min_overhead:
                continue
            spots.append(HotSpot(
                overhead=overhead,
                command=match.group("command"),
                shared_object=match.group("object"),
                symbol=match.group("symbol"),
            ))
        spots.sort(key=lambda s: -s.overhead)
        return spots

    def extract_queries(self, text: str) -> list[str]:
        return [spot.query_text() for spot in self.extract_hotspots(text)]


def format_perf_report(rows: list[tuple[float, str, str, str]]) -> str:
    """Render rows as perf-style text (for tests and examples)."""
    lines = [
        "# Overhead  Command  Shared Object  Symbol",
        "# ........  .......  .............  ......",
    ]
    for overhead, command, shared_object, symbol in rows:
        lines.append(f"  {overhead:6.2f}%  {command}  {shared_object}  "
                     f"[.] {symbol}")
    return "\n".join(lines)
