"""Analytical GPU kernel cost model.

Substitute for the physical GPUs of the paper's user study (GeForce
GTX 780 and GTX 480, Table 5).  A kernel's execution time is modeled
as a sum of cost components (global-memory traffic, divergence
serialization, latency stalls, arithmetic, occupancy limits, loop
overhead, host transfer); each known optimization multiplicatively
shrinks the components it targets.  Device models differ in their
component mix and in how much they reward each optimization —
reproducing the paper's observation that the same optimizations yield
larger speedups on the newer GTX 780 than on the GTX 480.

The model is deliberately simple: the user-study simulation only needs
the *relative* structure (more relevant optimizations found => larger
speedup; diminishing returns; device-dependent ceilings).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

COMPONENTS = (
    "global_memory",
    "divergence",
    "latency",
    "compute",
    "occupancy",
    "loop_overhead",
    "transfer",
)

#: optimization name -> {component: fractional reduction}
OPTIMIZATIONS: dict[str, dict[str, float]] = {
    # rearrange memory access instructions for coalescing
    "coalesce_memory": {"global_memory": 0.85},
    # tile into shared memory to cut redundant global loads
    "use_shared_memory": {"global_memory": 0.65},
    # remove the if-else block (paper Figure 5)
    "remove_divergence": {"divergence": 0.90},
    # tune the dimensions of thread blocks and grids
    "tune_block_dims": {"latency": 0.60, "occupancy": 0.40},
    # #pragma unroll on the key loops
    "loop_unrolling": {"loop_overhead": 0.70, "compute": 0.20},
    # maxrregcount / launch bounds to lift occupancy
    "reduce_register_pressure": {"occupancy": 0.50},
    # intrinsic / single-precision arithmetic
    "use_intrinsics": {"compute": 0.50},
    # pinned host memory for transfers
    "use_pinned_memory": {"transfer": 0.60},
}

#: The optimizations actually relevant to the case-study kernel —
#: what a perfectly-informed student could apply.
RELEVANT_OPTIMIZATIONS = frozenset(OPTIMIZATIONS)

#: Plausible-looking but irrelevant optimizations students may burn
#: time on (they do not change the model's components).
IRRELEVANT_OPTIMIZATIONS = frozenset(
    {"texture_memory_for_writes", "dynamic_parallelism",
     "warp_shuffle_reduction", "constant_memory_lut",
     "async_compute_streams", "half_precision_storage"}
)


@dataclass(frozen=True)
class GPUDevice:
    """A device model: component cost mix + optimization effectiveness."""

    name: str
    weights: dict[str, float]
    effectiveness: float = 1.0  # scales every optimization's reduction

    def __post_init__(self) -> None:
        missing = set(COMPONENTS) - set(self.weights)
        if missing:
            raise ValueError(f"missing component weights: {sorted(missing)}")


#: GeForce GTX 780 (Kepler): memory-dominated kernel profile, full
#: optimization effectiveness.
GTX_780 = GPUDevice(
    "GeForce GTX 780",
    weights={
        "global_memory": 50.0,
        "divergence": 22.0,
        "latency": 10.0,
        "compute": 8.0,
        "occupancy": 5.0,
        "loop_overhead": 3.0,
        "transfer": 2.0,
    },
    effectiveness=1.0,
)

#: GeForce GTX 480 (Fermi): flatter profile (L1-cached global loads)
#: and lower optimization headroom.
GTX_480 = GPUDevice(
    "GeForce GTX 480",
    weights={
        "global_memory": 42.0,
        "divergence": 20.0,
        "latency": 12.0,
        "compute": 12.0,
        "occupancy": 7.0,
        "loop_overhead": 4.0,
        "transfer": 3.0,
    },
    effectiveness=0.93,
)

DEVICES = {"GTX780": GTX_780, "GTX480": GTX_480}


@dataclass
class GPUKernelModel:
    """Execution-time model of the case-study kernel on one device."""

    device: GPUDevice
    optimizations: dict[str, dict[str, float]] = field(
        default_factory=lambda: dict(OPTIMIZATIONS))

    @property
    def baseline_time(self) -> float:
        return float(sum(self.device.weights.values()))

    def time(self, applied: Iterable[str]) -> float:
        """Modeled execution time after applying *applied* optimizations.

        Unknown/irrelevant optimization names are ignored (they change
        nothing — exactly the paper's "trying many irrelevant
        optimizations" failure mode).
        """
        factors = {component: 1.0 for component in COMPONENTS}
        for name in set(applied):
            effects = self.optimizations.get(name)
            if not effects:
                continue
            for component, reduction in effects.items():
                factors[component] *= 1.0 - reduction * self.device.effectiveness
        return float(sum(
            self.device.weights[c] * factors[c] for c in COMPONENTS))

    def speedup(self, applied: Iterable[str]) -> float:
        """Speedup over the unoptimized kernel."""
        return self.baseline_time / self.time(applied)

    def speedups_batch(self, applied_sets: list[set[str]]) -> np.ndarray:
        """Vectorized speedups for many optimization sets at once.

        Builds a (n_sets, n_opts) indicator matrix and evaluates all
        component factors with one ``logaddexp``-free product in log
        space — the vectorized formulation for parameter sweeps.
        """
        names = sorted(self.optimizations)
        indicator = np.zeros((len(applied_sets), len(names)))
        for row, applied in enumerate(applied_sets):
            for col, name in enumerate(names):
                if name in applied:
                    indicator[row, col] = 1.0
        # per-optimization log-factors per component
        n_components = len(COMPONENTS)
        log_factors = np.zeros((len(names), n_components))
        for col, name in enumerate(names):
            for k, component in enumerate(COMPONENTS):
                reduction = self.optimizations[name].get(component, 0.0)
                log_factors[col, k] = np.log1p(
                    -reduction * self.device.effectiveness)
        total_log = indicator @ log_factors          # (n_sets, n_components)
        weights = np.array([self.device.weights[c] for c in COMPONENTS])
        times = np.exp(total_log) @ weights
        return self.baseline_time / times
