"""Bootstrap confidence intervals and significance tests.

The paper reports single numbers for Table 5; a reproduction built on
a simulation should also say how stable they are.  Standard percentile
bootstrap for means/medians plus a bootstrap two-sample test for the
Egeria-vs-control difference.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with its percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.estimate:.2f} [{self.low:.2f}, {self.high:.2f}]"


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``statistic`` of *values*."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_resamples, data.size))
    stats = np.apply_along_axis(statistic, 1, data[indices])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=float(statistic(data)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_difference_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_resamples: int = 4000,
    seed: int = 0,
) -> float:
    """One-sided bootstrap p-value for ``mean(a) > mean(b)``.

    Resamples both groups independently and reports the fraction of
    resamples where the difference is <= 0 (smaller = stronger
    evidence that group *a*'s mean genuinely exceeds group *b*'s).
    """
    sample_a = np.asarray(a, dtype=float)
    sample_b = np.asarray(b, dtype=float)
    if sample_a.size == 0 or sample_b.size == 0:
        raise ValueError("both samples must be non-empty")
    rng = np.random.default_rng(seed)
    idx_a = rng.integers(0, sample_a.size, size=(n_resamples, sample_a.size))
    idx_b = rng.integers(0, sample_b.size, size=(n_resamples, sample_b.size))
    diffs = sample_a[idx_a].mean(axis=1) - sample_b[idx_b].mean(axis=1)
    return float((diffs <= 0.0).mean())
