"""Ranking-quality curves: precision-recall sweeps and average precision.

Table 6 evaluates at the fixed 0.15 threshold; these helpers evaluate
the *ranking* itself — precision/recall at every cutoff and the
average precision (AP) summary — removing the threshold from the
comparison between Egeria's two-stage retrieval and the baselines.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class PRCurve:
    """Precision/recall at each rank cutoff of a scored ranking."""

    precisions: tuple[float, ...]
    recalls: tuple[float, ...]
    average_precision: float

    def precision_at(self, k: int) -> float:
        if not self.precisions or k <= 0:
            return 0.0
        return self.precisions[min(k, len(self.precisions)) - 1]

    def recall_at(self, k: int) -> float:
        if not self.recalls or k <= 0:
            return 0.0
        return self.recalls[min(k, len(self.recalls)) - 1]


def pr_curve(
    ranked_items: Sequence[int],
    gold: set[int],
) -> PRCurve:
    """Curve over a ranking (best first) against *gold* items.

    ``average_precision`` is the standard AP: the mean of precision at
    each rank where a relevant item appears, with unretrieved relevant
    items contributing zero.
    """
    precisions: list[float] = []
    recalls: list[float] = []
    hits = 0
    ap_sum = 0.0
    for rank, item in enumerate(ranked_items, start=1):
        if item in gold:
            hits += 1
            ap_sum += hits / rank
        precisions.append(hits / rank)
        recalls.append(hits / len(gold) if gold else 0.0)
    average_precision = ap_sum / len(gold) if gold else 0.0
    return PRCurve(tuple(precisions), tuple(recalls), average_precision)


def mean_average_precision(
    rankings: Sequence[Sequence[int]],
    golds: Sequence[set[int]],
) -> float:
    """MAP over several queries."""
    if len(rankings) != len(golds):
        raise ValueError("rankings and golds length mismatch")
    if not rankings:
        return 0.0
    return sum(pr_curve(r, g).average_precision
               for r, g in zip(rankings, golds)) / len(rankings)
