"""Evaluation harness: metrics, rater simulation, user-study simulation.

Implements the measurement apparatus of §4: precision/recall/F-measure
(the information-retrieval metrics of Tables 6 and 8), Fleiss' kappa
(rater agreement, [13] in the paper), simulated expert raters with
majority voting (the labeling protocol), and the agent-based
user-study simulation behind Table 5.
"""

from repro.eval.metrics import (
    precision_recall_f,
    precision_recall_f_labels,
    PRF,
)
from repro.eval.kappa import fleiss_kappa
from repro.eval.raters import simulate_raters, majority_vote
from repro.eval.userstudy import UserStudyConfig, UserStudyResult, run_user_study
from repro.eval.bootstrap import (
    BootstrapCI,
    bootstrap_ci,
    bootstrap_difference_pvalue,
)
from repro.eval.significance import McNemarResult, mcnemar
from repro.eval.curves import PRCurve, pr_curve, mean_average_precision

__all__ = [
    "BootstrapCI",
    "bootstrap_ci",
    "bootstrap_difference_pvalue",
    "McNemarResult",
    "mcnemar",
    "PRCurve",
    "pr_curve",
    "mean_average_precision",
    "precision_recall_f",
    "precision_recall_f_labels",
    "PRF",
    "fleiss_kappa",
    "simulate_raters",
    "majority_vote",
    "UserStudyConfig",
    "UserStudyResult",
    "run_user_study",
]
