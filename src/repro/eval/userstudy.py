"""User-study simulation (paper §4.1, Table 5).

The paper's study: 37 graduate students optimize a sparse-matrix
normalization CUDA kernel for two weeks; 22 randomly chosen students
get the Egeria-built CUDA Adviser, the rest use the raw programming
guide and other resources.  Result: the Egeria group achieves much
larger speedups on both GPUs (6.27x/4.15x average vs 4.09x/2.59x).

The simulation preserves the causal mechanism the paper identifies:
"With its advice, the students were able to better target the set of
suitable optimizations ... which has saved them time in searching in
the original documents ... and has helped prevent them from trying
many irrelevant optimizations."

Each simulated student processes a stream of *leads* (sentences read
while working) under a reading/implementation budget:

* Egeria students' leads come from the advising tool's answers to the
  kernel's NVVP report and to follow-up queries — high precision,
  on-topic first;
* control students' leads come from stemmed keyword search over the
  full guide — a mix of advice and exposition, so much of the budget
  is spent on sentences that yield no optimization.

An advising lead maps (through its generation-time topic) to one of
the cost model's optimizations; implementing it succeeds with a
per-student skill probability.  Final speedups come from
:class:`~repro.profiler.gpu_model.GPUKernelModel` on both devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.keywords_method import KeywordsMethod
from repro.corpus.builder import LabeledGuide
from repro.core.advisor import AdvisingTool
from repro.profiler.generator import generate_report
from repro.profiler.gpu_model import GTX_480, GTX_780, GPUKernelModel

#: generation-time topic -> cost-model optimization
TOPIC_TO_OPTIMIZATION = {
    "memory_coalescing": "coalesce_memory",
    "divergence": "remove_divergence",
    "occupancy_latency": "tune_block_dims",
    "register_usage": "reduce_register_pressure",
    "memory_bandwidth": "use_shared_memory",
    "instruction_throughput": "use_intrinsics",
    "host_transfer": "use_pinned_memory",
}

#: follow-up queries students posed to the tool (§4.1 lists several)
FOLLOWUP_QUERIES = (
    "reduce instruction and memory latency",
    "warp execution efficiency",
    "How to avoid thread divergence",
    "memory access coalescence",
    "improve memory throughput",
    "register usage and occupancy",
)

#: search keywords control students try against the raw guide
CONTROL_KEYWORDS = (
    "performance", "memory", "divergent", "warp", "register",
    "optimization", "latency", "bandwidth", "instruction", "unroll",
)


@dataclass(frozen=True)
class UserStudyConfig:
    """Study parameters (defaults follow the paper's setup)."""

    n_students: int = 37
    n_egeria: int = 22
    #: mean/sd of the two-week work budget (arbitrary effort units)
    budget_mean: float = 26.0
    budget_sd: float = 5.0
    #: mean/sd of per-student implementation success probability
    skill_mean: float = 0.9
    skill_sd: float = 0.06
    #: chance a student knows an optimization a priori (both groups —
    #: §4.1: "no significant difference in the amount of prior GPU
    #: experience between the two groups")
    prior_knowledge: float = 0.12
    #: effort to skim one sentence lead
    read_cost: float = 0.2
    #: effort to implement one optimization
    implement_cost: float = 1.0
    #: chance a dead-end sentence lures the student into implementing
    #: an irrelevant optimization (wasted implement_cost) — the paper's
    #: "trying many irrelevant optimizations" failure mode
    wild_goose_prob: float = 0.25
    seed: int = 42


@dataclass
class UserStudyResult:
    """Speedups per group per device plus summary statistics."""

    egeria_780: np.ndarray
    egeria_480: np.ndarray
    control_780: np.ndarray
    control_480: np.ndarray

    def summary(self) -> dict[str, dict[str, float]]:
        """Table 5: average and median per group per device."""
        def stats(values: np.ndarray) -> dict[str, float]:
            return {"average": float(values.mean()),
                    "median": float(np.median(values))}
        return {
            "egeria_gtx780": stats(self.egeria_780),
            "egeria_gtx480": stats(self.egeria_480),
            "control_gtx780": stats(self.control_780),
            "control_gtx480": stats(self.control_480),
        }


def _leads_from_advisor(
    advisor: AdvisingTool, guide: LabeledGuide
) -> list[str]:
    """Optimization leads an Egeria student encounters, in order."""
    leads: list[str] = []
    report = generate_report("norm").to_text()
    answers = advisor.query_report(report)
    for query in FOLLOWUP_QUERIES:
        answers.append(advisor.query(query))
    seen: set[int] = set()
    seen_optimizations: set[str] = set()
    for answer in answers:
        for sentence in answer.sentences:
            if sentence.index in seen:
                continue
            seen.add(sentence.index)
            lead = _lead_for_sentence(guide, sentence.index)
            if lead and lead in seen_optimizations:
                # an answer's sentences are grouped and highlighted —
                # repeated suggestions are recognized at a glance and
                # cost no separate reading effort
                continue
            if lead:
                seen_optimizations.add(lead)
            leads.append(lead)
    return leads


def _leads_from_search(guide: LabeledGuide) -> list[str]:
    """Leads a control student encounters via raw keyword search."""
    searcher = KeywordsMethod(guide.document)
    leads: list[str] = []
    seen: set[int] = set()
    per_keyword = [searcher.search(k) for k in CONTROL_KEYWORDS]
    # interleave result lists: students skim one topic, then the next
    for rank in range(max(len(r) for r in per_keyword)):
        for results in per_keyword:
            if rank >= len(results):
                continue
            sentence = results[rank]
            if sentence.index in seen:
                continue
            seen.add(sentence.index)
            leads.append(_lead_for_sentence(guide, sentence.index))
    return leads


def _lead_for_sentence(guide: LabeledGuide, index: int) -> str:
    """Map a sentence to an optimization name, or '' for a dead end."""
    meta = guide.meta[index]
    if not meta.advising:
        return ""
    optimization = TOPIC_TO_OPTIMIZATION.get(meta.topic, "")
    if optimization == "use_intrinsics" \
            and "unroll" in guide.document.sentences[index].text.lower():
        return "loop_unrolling"
    # reading advice about unrolling counts for the unroll optimization
    if "unroll" in guide.document.sentences[index].text.lower():
        return "loop_unrolling"
    return optimization


def _simulate_group(
    leads: list[str],
    n_students: int,
    config: UserStudyConfig,
    rng: np.random.Generator,
) -> list[set[str]]:
    """Applied-optimization sets for one group of students."""
    all_optimizations = sorted(set(TOPIC_TO_OPTIMIZATION.values())
                               | {"loop_unrolling"})
    applied_sets: list[set[str]] = []
    for _ in range(n_students):
        budget = max(4.0, rng.normal(config.budget_mean, config.budget_sd))
        skill = float(np.clip(
            rng.normal(config.skill_mean, config.skill_sd), 0.3, 1.0))
        applied: set[str] = set()
        attempted: set[str] = set()
        # prior GPU experience (same distribution for both groups)
        for optimization in all_optimizations:
            if rng.random() < config.prior_knowledge:
                applied.add(optimization)
        for lead in leads:
            if budget <= 0:
                break
            budget -= config.read_cost
            if not lead:
                # dead end; occasionally lures a wasted implementation
                if rng.random() < config.wild_goose_prob:
                    budget -= config.implement_cost
                continue
            if lead in applied or lead in attempted:
                continue  # recognizes already-known advice at a glance
            attempted.add(lead)
            budget -= config.implement_cost
            if budget < 0:
                break  # ran out of time mid-implementation
            if rng.random() < skill:
                applied.add(lead)
        applied_sets.append(applied)
    return applied_sets


def run_user_study(
    guide: LabeledGuide,
    advisor: AdvisingTool,
    config: UserStudyConfig | None = None,
) -> UserStudyResult:
    """Run the simulated study and return per-student speedups."""
    config = config or UserStudyConfig()
    rng = np.random.default_rng(config.seed)

    egeria_leads = _leads_from_advisor(advisor, guide)
    control_leads = _leads_from_search(guide)

    n_control = config.n_students - config.n_egeria
    egeria_sets = _simulate_group(egeria_leads, config.n_egeria, config, rng)
    control_sets = _simulate_group(control_leads, n_control, config, rng)

    model_780 = GPUKernelModel(GTX_780)
    model_480 = GPUKernelModel(GTX_480)
    return UserStudyResult(
        egeria_780=model_780.speedups_batch(egeria_sets),
        egeria_480=model_480.speedups_batch(egeria_sets),
        control_780=model_780.speedups_batch(control_sets),
        control_480=model_480.speedups_batch(control_sets),
    )
