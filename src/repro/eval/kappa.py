"""Fleiss' kappa (Fleiss 1971) — the rater-agreement statistic the
paper reports for its expert labelings (κ > 0.8 for Table 6 relevance
labels, κ > 0.85 for the Table 8 advising labels)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def fleiss_kappa(ratings: Sequence[Sequence[int]]) -> float:
    """Fleiss' kappa for categorical ratings.

    ``ratings[i][j]`` is the category rater *j* assigned to item *i*.
    All items must be rated by the same number of raters (>= 2).
    Returns 1.0 for perfect agreement, ~0 for chance-level agreement.
    """
    matrix = np.asarray(ratings)
    if matrix.ndim != 2:
        raise ValueError("ratings must be a 2-D (items x raters) table")
    n_items, n_raters = matrix.shape
    if n_raters < 2:
        raise ValueError("need at least two raters")
    categories = np.unique(matrix)
    # counts[i, k] = number of raters assigning category k to item i
    counts = np.zeros((n_items, categories.size))
    for k, category in enumerate(categories):
        counts[:, k] = (matrix == category).sum(axis=1)

    p_category = counts.sum(axis=0) / (n_items * n_raters)
    p_item = ((counts * (counts - 1)).sum(axis=1)
              / (n_raters * (n_raters - 1)))
    p_bar = p_item.mean()
    p_expected = float((p_category ** 2).sum())
    if p_expected >= 1.0:
        return 1.0  # single category used throughout: total agreement
    return float((p_bar - p_expected) / (1.0 - p_expected))
