"""Simulated expert raters with majority voting.

The paper's ground truth comes from "three domain experts" whose
labels show small disagreements concentrated on ambiguous sentences
("As some sentences appear vague in whether they provide advice on
optimizations, there are slight discrepancies among the labels",
§4.3), with Fleiss' κ above 0.8.

A simulated rater flips the true label with a small probability on
easy sentences and a larger probability on the deliberately hard ones
(the corpus's ``hard`` flag marks the ambiguous cases).  The error
rates below land κ in the paper's 0.8-0.9 band.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def simulate_raters(
    true_labels: Sequence[bool],
    hard_flags: Sequence[bool],
    n_raters: int = 3,
    easy_error: float = 0.02,
    hard_error: float = 0.25,
    seed: int = 0,
) -> np.ndarray:
    """Per-rater binary labels, shape (items, raters)."""
    if len(true_labels) != len(hard_flags):
        raise ValueError("true_labels and hard_flags length mismatch")
    rng = np.random.default_rng(seed)
    truth = np.asarray(true_labels, dtype=bool)
    hard = np.asarray(hard_flags, dtype=bool)
    error_rate = np.where(hard, hard_error, easy_error)
    flips = rng.random((len(truth), n_raters)) < error_rate[:, None]
    return np.where(flips, ~truth[:, None], truth[:, None]).astype(int)


def majority_vote(ratings: np.ndarray) -> list[bool]:
    """Majority label per item (ties resolve to False, the majority
    class in guide corpora)."""
    matrix = np.asarray(ratings)
    votes = matrix.sum(axis=1)
    return (votes * 2 > matrix.shape[1]).tolist()
