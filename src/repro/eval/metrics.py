"""Precision / recall / F-measure (paper §4.2).

"The three metrics we use are commonly used in information retrieval:
precision P (#true positive/#answers), recall R (#true
positive/#groundTruth), and the combined metric F-measure
F = 2*P*R/(P+R)."
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class PRF:
    """A precision/recall/F triple with the supporting counts."""

    precision: float
    recall: float
    f_measure: float
    true_positives: int = 0
    predicted: int = 0
    gold: int = 0

    def as_row(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f_measure)


def precision_recall_f(
    predicted: set, gold: set
) -> tuple[float, float, float]:
    """P, R, F for predicted vs gold element sets."""
    true_positives = len(predicted & gold)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(gold) if gold else 0.0
    f_measure = (2 * precision * recall / (precision + recall)
                 if precision + recall > 0 else 0.0)
    return precision, recall, f_measure


def prf(predicted: set, gold: set) -> PRF:
    """Like :func:`precision_recall_f` but returning a :class:`PRF`."""
    precision, recall, f_measure = precision_recall_f(predicted, gold)
    return PRF(precision, recall, f_measure,
               true_positives=len(predicted & gold),
               predicted=len(predicted), gold=len(gold))


def precision_recall_f_labels(
    predicted: Sequence[bool], gold: Sequence[bool]
) -> tuple[float, float, float]:
    """P, R, F for aligned binary label sequences."""
    if len(predicted) != len(gold):
        raise ValueError(
            f"length mismatch: {len(predicted)} vs {len(gold)}")
    predicted_set = {i for i, flag in enumerate(predicted) if flag}
    gold_set = {i for i, flag in enumerate(gold) if flag}
    return precision_recall_f(predicted_set, gold_set)
