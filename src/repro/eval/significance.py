"""Paired significance tests for classifier comparisons.

McNemar's test on paired binary decisions: when two recognizers
classify the same sentences, the discordant pairs (one right, the
other wrong) carry the evidence that one method is genuinely better —
the right statistic for Table 8-style comparisons on a shared corpus.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from scipy.stats import binom


@dataclass(frozen=True)
class McNemarResult:
    """Discordant-pair counts and the exact binomial p-value."""

    b: int  # method A correct, method B wrong
    c: int  # method A wrong, method B correct
    p_value: float

    @property
    def n_discordant(self) -> int:
        return self.b + self.c


def mcnemar(
    gold: Sequence[bool],
    predictions_a: Sequence[bool],
    predictions_b: Sequence[bool],
) -> McNemarResult:
    """Exact McNemar test on paired classifications.

    Returns the two-sided p-value for the hypothesis that methods A
    and B have equal error rates; small p with ``b > c`` means A is
    significantly better.
    """
    if not (len(gold) == len(predictions_a) == len(predictions_b)):
        raise ValueError("gold and prediction lengths must match")
    b = c = 0
    for truth, a_pred, b_pred in zip(gold, predictions_a, predictions_b):
        a_correct = a_pred == truth
        b_correct = b_pred == truth
        if a_correct and not b_correct:
            b += 1
        elif b_correct and not a_correct:
            c += 1
    n = b + c
    if n == 0:
        return McNemarResult(0, 0, 1.0)
    # exact binomial: P(X <= min(b,c)) * 2 under X ~ Binom(n, 0.5)
    k = min(b, c)
    p_value = min(1.0, 2.0 * float(binom.cdf(k, n, 0.5)))
    return McNemarResult(b, c, p_value)
