"""Call counters for the expensive text-processing primitives.

The annotation pipeline's whole point is that tokenization and
stemming happen once per sentence, ever.  These process-wide counters
make that claim testable: ``WordTokenizer.tokenize`` and
``PorterStemmer.stem`` tick them on every call, and the test suite
asserts that building Stage II from a
:class:`~repro.pipeline.annotations.DocumentAnnotations` artifact (or
a v2 advisor file) performs **zero** of either.

The counters are plain integer increments — cheap enough to stay on in
production — and are never reset by library code; measure with
:func:`snapshot` deltas (or the :func:`measure` context manager).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass


class _Counters:
    __slots__ = ("tokenize_calls", "stem_calls")

    def __init__(self) -> None:
        self.tokenize_calls = 0
        self.stem_calls = 0


_COUNTERS = _Counters()
_LOCK = threading.Lock()


def count_tokenize() -> None:
    """Tick the tokenizer counter (called by ``WordTokenizer``)."""
    _COUNTERS.tokenize_calls += 1


def count_stem() -> None:
    """Tick the stemmer counter (called by ``PorterStemmer``)."""
    _COUNTERS.stem_calls += 1


@dataclass(frozen=True)
class CallSnapshot:
    """Counter values at one instant; subtract to get deltas."""

    tokenize_calls: int
    stem_calls: int

    def __sub__(self, other: "CallSnapshot") -> "CallSnapshot":
        return CallSnapshot(
            tokenize_calls=self.tokenize_calls - other.tokenize_calls,
            stem_calls=self.stem_calls - other.stem_calls,
        )

    @property
    def total(self) -> int:
        return self.tokenize_calls + self.stem_calls


def snapshot() -> CallSnapshot:
    """Current process-wide counter values."""
    return CallSnapshot(
        tokenize_calls=_COUNTERS.tokenize_calls,
        stem_calls=_COUNTERS.stem_calls,
    )


class _Measurement:
    """Mutable result of a :func:`measure` block."""

    def __init__(self, start: CallSnapshot) -> None:
        self._start = start
        self.tokenize_calls = 0
        self.stem_calls = 0

    def _finish(self) -> None:
        delta = snapshot() - self._start
        self.tokenize_calls = delta.tokenize_calls
        self.stem_calls = delta.stem_calls

    @property
    def total(self) -> int:
        return self.tokenize_calls + self.stem_calls


@contextmanager
def measure():
    """Count tokenizer/stemmer calls made inside the ``with`` block.

    >>> from repro.textproc.word_tokenizer import word_tokenize
    >>> with measure() as calls:
    ...     _ = word_tokenize("Use shared memory.")
    >>> calls.tokenize_calls
    1
    """
    with _LOCK:
        measurement = _Measurement(snapshot())
    try:
        yield measurement
    finally:
        measurement._finish()
