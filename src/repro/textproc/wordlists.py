"""Base-form word inventories shared by the lemmatizer and POS lexicon.

These lists are *not* an attempt at a full English dictionary; they
cover (a) high-frequency English and (b) the working vocabulary of GPU
/ many-core programming guides — the genre Egeria processes.  The
lemmatizer uses them to validate candidate base forms (e.g. undoing
consonant doubling in "controlled" -> "control" only because "control"
is a known verb), and the tagger seeds its lexicon from them.
"""

from __future__ import annotations

#: Verbs in base form.
BASE_VERBS: frozenset[str] = frozenset("""
accept access accomplish achieve add adjust affect align allocate allow
analyze apply argue arrange assign assume attempt avoid balance batch be
become begin benefit bind block build cache calculate call cause change
check choose combine come compile compute configure consider consist
contain contribute control convert coalesce copy correspond cost count
create deal declare decompose decrease define degrade demand depend
describe design detect determine develop diverge divide do download
drop eliminate emit enable encounter encourage ensure evaluate examine
exceed execute exhibit expect explain exploit expose express extract
favor fetch fill find finish fit flush follow force fuse gather
generate get give group grow guarantee guide handle happen have help
hide hold hint identify ignore impact implement improve include
increase incur indicate infer initialize insert inspect install
instantiate interleave introduce invoke involve issue iterate keep
kernel know launch lead let leverage limit list load lock look loop
lower maintain make manage map mask match maximize mean measure meet
merge minimize miss mitigate move need note notice observe obtain occupy
occur offer offload operate optimize order organize overlap overload
override pack pad parallelize parameterize partition pass perform pin
place point prefer prefetch prepare present prevent process produce
profile program provide put query queue read rearrange recommend
reduce refactor refer reference relate release rely remain remove
reorder replace report represent require reserve reside resolve
restrict result retrieve return reuse run sample saturate save scale
schedule search select send serialize serve set share show simplify
skip slow specify speed spill split stage start stall store stream stride
submit suffer suggest supply support switch synchronize take target
tell tend terminate test tile trade transfer transform translate
transpose try tune turn unroll update upload use utilize vary
vectorize wait want waste wrap write yield
""".split())

#: Nouns in base form (singular).
BASE_NOUNS: frozenset[str] = frozenset("""
access accelerator address algorithm alignment allocation amount
application approach architecture argument arithmetic array aspect
atomics attempt bandwidth bank barrier batch behavior benchmark benefit block
bottleneck boundary buffer bus byte cache call capability case chapter
chip choice chunk clock coalescing code command compiler computation
compute concurrency condition configuration conflict constant
constraint contention context control copy core cost counter cycle
data deadlock degree demand dependence dependency design detail developer
device difference dimension directive divergence document domain
driver effect efficiency element engine environment event example
execution expert factor feature fetch figure file flag float flow
footprint form fraction function gain gap grid group guarantee guide guideline
half hardware heuristic hierarchy host image impact implementation
improvement index instance instruction integer intensity interface
issue item iteration kernel key latency launch layout level library
limit limiter line list load locality lock loop machine manner matrix
maximum memory method metric microprocessor minimum mode model module
multiprocessor number object occupancy operation opportunity
optimization option order overhead page parallelism parameter part
partition pass path pattern peak penalty performance phase pipeline
pitfall place platform point pointer policy pool port portion
practice precision predicate pressure principle problem procedure
process processor profile profiler program programmer programming
purpose quarter query queue range rate ratio read reason reference
region register report request requirement resource result reuse
row rule runtime sampler scalar scenario schedule scheduler scheme
section segment sequence series set shape size software solution
source space speed speedup stage stall standard start state statement
step storage strategy stream stride string structure style subsection
subset suggestion support surface synchronization system table target
task technique term texture thread throughput tile time tool topic
total trade-off traffic transaction transfer transformation transpose
tuning type unit usage use user utilization value variable variant
vector vendor version warp wavefront way word work workgroup workload
write
""".split())

#: Adjectives in base form.
BASE_ADJECTIVES: frozenset[str] = frozenset("""
able active actual additional adjacent advisable aligned appropriate
arithmetic asynchronous atomic automatic available bad basic best
better big busy careful certain cheap clean clear coalesced common
compact comparable compatible complete complex concurrent conditional
consecutive considerable consistent constant contiguous correct
costly critical crucial current custom dedicated deep default
denormalized dense dependent desirable detailed different difficult
direct divergent double due dynamic early easy effective efficient
empty enough entire equal essential excessive expensive explicit
extra fast fast-path feasible few final fine fine-grained first
flexible following frequent full fundamental general generic global
good great half hard helpful heterogeneous hierarchical high
high-level hot ideal identical idle important inactive independent
indirect individual inefficient inexpensive initial inner intensive
intermediate internal intrinsic invalid irregular key large last late
lazy likely limited linear local logical long low main major many
massive maximum minimal minimum misaligned modern multiple naive
native natural necessary negative new next nominal normal notable
null numeric obvious occasional old optimal optional original outer
overall own parallel partial particular passive peak pinned poor
portable possible potential practical precise preferable present
previous primary prior private profitable proper random rapid rare
raw read-only ready recent rectangular redundant regular related
relative relevant reliable remote resident responsible restricted
rich right robust rough same scalar scarce scattered second
sequential serial severe shared short significant similar simple
single slow small smart sparse special specific square standard
static steady straightforward strong structured subsequent
substantial successive sufficient suitable superior synchronous
temporal temporary theoretical third tight tiny total traditional
transparent true typical unaligned uncached underlying uniform
unique unnecessary unused useful useless usual valid variable
various vectorized viable virtual visible warp-level wasteful whole
wide wise worth wrong
""".split())

#: Irregular verb forms -> base.
IRREGULAR_VERBS: dict[str, str] = {
    "am": "be", "is": "be", "are": "be", "was": "be", "were": "be",
    "been": "be", "being": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "goes": "go", "went": "go", "gone": "go",
    "ran": "run", "running": "run", "runs": "run",
    "wrote": "write", "written": "write",
    "read": "read", "led": "lead", "made": "make", "making": "make",
    "took": "take", "taken": "take", "taking": "take",
    "gave": "give", "given": "give", "giving": "give",
    "got": "get", "gotten": "get", "getting": "get",
    "held": "hold", "kept": "keep", "met": "meet",
    "found": "find", "left": "leave", "lost": "lose",
    "chose": "choose", "chosen": "choose", "choosing": "choose",
    "came": "come", "coming": "come",
    "became": "become", "becoming": "become",
    "began": "begin", "begun": "begin", "beginning": "begin",
    "brought": "bring", "built": "build", "bought": "buy",
    "caught": "catch", "dealt": "deal", "drew": "draw", "drawn": "draw",
    "fell": "fall", "fallen": "fall", "felt": "feel",
    "grew": "grow", "grown": "grow", "knew": "know", "known": "know",
    "meant": "mean", "paid": "pay", "put": "put",
    "said": "say", "saw": "see", "seen": "see", "sent": "send",
    "set": "set", "showed": "show", "shown": "show",
    "spent": "spend", "split": "split", "spoke": "speak",
    "spoken": "speak", "stood": "stand", "thought": "think",
    "told": "tell", "understood": "understand", "wrote": "write",
    "hid": "hide", "hidden": "hide", "hiding": "hide",
    "let": "let", "letting": "let", "cut": "cut", "cutting": "cut",
    "cost": "cost", "hit": "hit", "fit": "fit",
    "spilt": "spill", "sped": "speed",
}

#: Irregular noun plurals -> singular.
IRREGULAR_NOUNS: dict[str, str] = {
    "children": "child", "people": "person", "men": "man",
    "women": "woman", "feet": "foot", "mice": "mouse",
    "indices": "index", "matrices": "matrix", "vertices": "vertex",
    "indexes": "index", "analyses": "analysis", "bases": "basis",
    "criteria": "criterion", "phenomena": "phenomenon",
    "data": "data", "media": "media", "hierarchies": "hierarchy",
    "dependencies": "dependency", "capabilities": "capability",
    "latencies": "latency", "strategies": "strategy",
    "boundaries": "boundary", "libraries": "library",
    "memories": "memory", "policies": "policy",
    "penalties": "penalty", "priorities": "priority",
    "utilities": "utility", "efficiencies": "efficiency",
    "caches": "cache",
    "halves": "half", "leaves": "leaf", "lives": "life",
}

#: Irregular adjective comparative/superlative -> base.
IRREGULAR_ADJECTIVES: dict[str, str] = {
    "better": "good", "best": "good",
    "worse": "bad", "worst": "bad",
    "more": "many", "most": "many",
    "less": "little", "least": "little",
    "further": "far", "furthest": "far",
    "larger": "large", "largest": "large",
    "smaller": "small", "smallest": "small",
    "higher": "high", "highest": "high",
    "lower": "low", "lowest": "low",
    "faster": "fast", "fastest": "fast",
    "slower": "slow", "slowest": "slow",
}
