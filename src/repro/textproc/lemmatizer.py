"""Rule-and-exception English lemmatizer (WordNet-lemmatizer stand-in).

Egeria needs lemmas in three places (paper §3.1.2): Selector 2 matches
``lemma(governor)`` against ``XCOMP_GOVERNORS``; Selector 3 matches the
root verb's lemma against ``IMPERATIVE_WORDS``; Selector 4 matches the
subject noun's lemma against ``KEY_SUBJECTS``.  All three only require
inflectional lemmatization (runs/ran/running -> run; developers ->
developer), which a rule system with irregular tables handles well for
guide-genre English.

Candidates produced by suffix rules are validated against the base-form
word lists in :mod:`repro.textproc.wordlists`; when no candidate
validates, the most conservative transformation is returned.
"""

from __future__ import annotations

from repro.textproc.wordlists import (
    BASE_ADJECTIVES,
    BASE_NOUNS,
    BASE_VERBS,
    IRREGULAR_ADJECTIVES,
    IRREGULAR_NOUNS,
    IRREGULAR_VERBS,
)

VOWELS = set("aeiou")

# (suffix, replacements-to-try) for verbs; first validated wins.
_VERB_RULES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("ies", ("y",)),
    ("ied", ("y",)),
    ("sses", ("ss",)),
    ("ches", ("ch",)),
    ("shes", ("sh",)),
    ("xes", ("x",)),
    ("zes", ("z", "ze")),
    ("es", ("e", "")),
    ("s", ("",)),
    ("ing", ("", "e")),
    ("ed", ("", "e")),
)

_NOUN_RULES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("ies", ("y",)),
    ("ves", ("f", "fe")),
    ("ches", ("ch",)),
    ("shes", ("sh",)),
    ("sses", ("ss",)),
    ("xes", ("x",)),
    ("oes", ("o",)),
    ("es", ("e", "")),
    ("s", ("",)),
)

_ADJ_RULES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("iest", ("y",)),
    ("ier", ("y",)),
    ("est", ("", "e")),
    ("er", ("", "e")),
)

_DOUBLED = tuple(c + c for c in "bdfglmnprstz")


class Lemmatizer:
    """Lemmatize English words by part of speech.

    ``pos`` uses the WordNet convention: ``"v"`` (verb), ``"n"``
    (noun), ``"a"`` (adjective); anything else returns the lowercased
    word unchanged.

    >>> Lemmatizer().lemmatize("leveraged", "v")
    'leverage'
    >>> Lemmatizer().lemmatize("developers", "n")
    'developer'
    """

    def __init__(self) -> None:
        self._cache: dict[tuple[str, str], str] = {}

    def lemmatize(self, word: str, pos: str = "n") -> str:
        word = word.lower()
        key = (word, pos)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if pos == "v":
            result = self._lemmatize_verb(word)
        elif pos == "n":
            result = self._lemmatize_noun(word)
        elif pos == "a":
            result = self._lemmatize_adjective(word)
        else:
            result = word
        self._cache[key] = result
        return result

    # -- per-POS logic ---------------------------------------------------

    def _lemmatize_verb(self, word: str) -> str:
        if word in IRREGULAR_VERBS:
            return IRREGULAR_VERBS[word]
        if word in BASE_VERBS:
            return word
        candidate = self._apply_rules(word, _VERB_RULES, BASE_VERBS,
                                      undouble=True)
        return candidate if candidate is not None else self._fallback_verb(word)

    def _lemmatize_noun(self, word: str) -> str:
        if word in IRREGULAR_NOUNS:
            return IRREGULAR_NOUNS[word]
        if word in BASE_NOUNS:
            return word
        candidate = self._apply_rules(word, _NOUN_RULES, BASE_NOUNS)
        if candidate is not None:
            return candidate
        # conservative: strip plural -s / -es heuristically
        if word.endswith("ies") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith(("ches", "shes", "sses", "xes", "zes")):
            return word[:-2]
        if word.endswith("s") and not word.endswith(("ss", "us", "is")):
            return word[:-1]
        return word

    def _lemmatize_adjective(self, word: str) -> str:
        if word in IRREGULAR_ADJECTIVES:
            return IRREGULAR_ADJECTIVES[word]
        if word in BASE_ADJECTIVES:
            return word
        candidate = self._apply_rules(word, _ADJ_RULES, BASE_ADJECTIVES,
                                      undouble=True)
        return candidate if candidate is not None else word

    # -- machinery ---------------------------------------------------------

    @staticmethod
    def _apply_rules(
        word: str,
        rules: tuple[tuple[str, tuple[str, ...]], ...],
        valid: frozenset[str],
        undouble: bool = False,
    ) -> str | None:
        for suffix, replacements in rules:
            if not word.endswith(suffix) or len(word) <= len(suffix):
                continue
            stem_part = word[: -len(suffix)]
            for replacement in replacements:
                candidate = stem_part + replacement
                if candidate in valid:
                    return candidate
                if undouble and candidate.endswith(_DOUBLED):
                    undoubled = candidate[:-1]
                    if undoubled in valid:
                        return undoubled
        return None

    @staticmethod
    def _fallback_verb(word: str) -> str:
        """Heuristic verb lemma when the word list does not validate."""
        if word.endswith("ies") and len(word) > 4:
            return word[:-3] + "y"
        if word.endswith(("ches", "shes", "sses", "xes")):
            return word[:-2]
        if word.endswith("ing") and len(word) > 5:
            stem_part = word[:-3]
            if stem_part.endswith(_DOUBLED):
                return stem_part[:-1]
            # CVC pattern usually wants the silent e back ("writing")
            if (len(stem_part) >= 2 and stem_part[-1] not in VOWELS
                    and stem_part[-2] in VOWELS
                    and stem_part[-1] not in "wxy"):
                return stem_part
            return stem_part
        if word.endswith("ed") and len(word) > 4:
            stem_part = word[:-2]
            if stem_part.endswith(_DOUBLED):
                return stem_part[:-1]
            if stem_part.endswith(("at", "iz", "iv", "us", "ag", "in",
                                   "ar", "or", "ut", "id")):
                return stem_part + "e"
            return stem_part
        if word.endswith("es") and len(word) > 3:
            return word[:-1]
        if word.endswith("s") and not word.endswith("ss") and len(word) > 3:
            return word[:-1]
        return word


_DEFAULT = Lemmatizer()


def lemmatize(word: str, pos: str = "n") -> str:
    """Lemmatize *word* with a shared :class:`Lemmatizer`."""
    return _DEFAULT.lemmatize(word, pos)
