"""Porter2 ("English Snowball") stemmer.

A complete from-scratch implementation of the Porter2 stemming
algorithm (Martin Porter, 2001), the same algorithm NLTK's
``SnowballStemmer("english")`` implements.  Egeria relies on stemming
in two places: the keyword selectors of Stage I (both the keyword
lists and the sentences are stemmed before matching, paper §3.1.2) and
the token normalization feeding the TF-IDF vector space of Stage II.

The implementation follows the published algorithm definition step by
step; each step is a separate method so tests can exercise them
individually.
"""

from __future__ import annotations

from repro.textproc.instrumentation import count_stem

VOWELS = frozenset("aeiouy")

DOUBLES = ("bb", "dd", "ff", "gg", "mm", "nn", "pp", "rr", "tt")

LI_ENDINGS = frozenset("cdeghkmnrt")

# Words stemmed as special cases before the algorithm proper.
_EXCEPTIONAL_FORMS = {
    "skis": "ski",
    "skies": "sky",
    "dying": "die",
    "lying": "lie",
    "tying": "tie",
    "idly": "idl",
    "gently": "gentl",
    "ugly": "ugli",
    "early": "earli",
    "only": "onli",
    "singly": "singl",
    # invariant forms
    "sky": "sky",
    "news": "news",
    "howe": "howe",
    "atlas": "atlas",
    "cosmos": "cosmos",
    "bias": "bias",
    "andes": "andes",
}

# Words left untouched after step 1a.
_EXCEPTIONAL_AFTER_1A = frozenset(
    {"inning", "outing", "canning", "herring", "earring",
     "proceed", "exceed", "succeed"}
)

_STEP2_SUFFIXES = (
    # (suffix, replacement); longest match wins, checked in this order
    ("ization", "ize"),
    ("ational", "ate"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("iveness", "ive"),
    ("tional", "tion"),
    ("biliti", "ble"),
    ("lessli", "less"),
    ("entli", "ent"),
    ("ation", "ate"),
    ("alism", "al"),
    ("aliti", "al"),
    ("ousli", "ous"),
    ("iviti", "ive"),
    ("fulli", "ful"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("abli", "able"),
    ("izer", "ize"),
    ("ator", "ate"),
    ("alli", "al"),
    ("bli", "ble"),
)

_STEP3_SUFFIXES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("alize", "al"),
    ("icate", "ic"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)

_STEP4_SUFFIXES = (
    "ement", "ance", "ence", "able", "ible", "ment",
    "ant", "ent", "ism", "ate", "iti", "ous", "ive", "ize",
    "ion", "al", "er", "ic",
)


class PorterStemmer:
    """Porter2 English stemmer.

    Instances are stateless and cheap; a module-level singleton backs
    the :func:`stem` convenience function.  Results are memoised per
    instance because Egeria re-stems the same vocabulary many times
    while scanning a document.
    """

    def __init__(self, cache_size: int = 100_000) -> None:
        self._cache: dict[str, str] = {}
        self._cache_size = cache_size

    # -- public API ----------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter2 stem of *word* (lowercased first)."""
        count_stem()
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        result = self._stem(word)
        if len(self._cache) < self._cache_size:
            self._cache[word] = result
        return result

    # -- algorithm -----------------------------------------------------

    def _stem(self, word: str) -> str:
        if len(word) <= 2:
            return word
        if word in _EXCEPTIONAL_FORMS:
            return _EXCEPTIONAL_FORMS[word]

        word = self._preprocess(word)
        r1, r2 = self._regions(word)

        word = self._step0(word)
        word, r1, r2 = self._resync(word, r1, r2)
        word = self._step1a(word)
        if word in _EXCEPTIONAL_AFTER_1A:
            return word.replace("Y", "y")
        word, r1, r2 = self._resync(word, r1, r2)
        word = self._step1b(word, r1)
        word, r1, r2 = self._resync(word, r1, r2)
        word = self._step1c(word)
        word = self._step2(word, r1)
        word, r1, r2 = self._resync(word, r1, r2)
        word = self._step3(word, r1, r2)
        word, r1, r2 = self._resync(word, r1, r2)
        word = self._step4(word, r2)
        word, r1, r2 = self._resync(word, r1, r2)
        word = self._step5(word, r1, r2)
        return word.replace("Y", "y")

    @staticmethod
    def _resync(word: str, r1: int, r2: int) -> tuple[str, int, int]:
        """Clamp region offsets after the word shrank."""
        n = len(word)
        return word, min(r1, n), min(r2, n)

    # -- prelude --------------------------------------------------------

    @staticmethod
    def _preprocess(word: str) -> str:
        if word.startswith("'"):
            word = word[1:]
        if word.startswith("y"):
            word = "Y" + word[1:]
        chars = list(word)
        for i in range(1, len(chars)):
            if chars[i] == "y" and chars[i - 1] in VOWELS:
                chars[i] = "Y"
        return "".join(chars)

    @staticmethod
    def _regions(word: str) -> tuple[int, int]:
        """Compute R1 and R2 start offsets.

        R1 is the region after the first non-vowel following a vowel;
        R2 is computed the same way within R1.  Words beginning with
        ``gener``, ``commun`` or ``arsen`` get a fixed R1.
        """
        n = len(word)
        lowered = word.lower()
        r1 = n
        for prefix in ("gener", "commun", "arsen"):
            if lowered.startswith(prefix):
                r1 = len(prefix)
                break
        else:
            for i in range(1, n):
                if lowered[i] not in VOWELS and lowered[i - 1] in VOWELS:
                    r1 = i + 1
                    break
        r2 = n
        for i in range(r1 + 1, n):
            if lowered[i] not in VOWELS and lowered[i - 1] in VOWELS:
                r2 = i + 1
                break
        return r1, r2

    @staticmethod
    def _contains_vowel(fragment: str) -> bool:
        return any(c in VOWELS for c in fragment.lower())

    @classmethod
    def _ends_short_syllable(cls, word: str) -> bool:
        """True if *word* ends with a "short syllable".

        A short syllable is (a) a vowel followed by a non-vowel other
        than w, x or Y, preceded by a non-vowel; or (b) a vowel at the
        beginning of the word followed by a non-vowel.
        """
        n = len(word)
        lowered = word.lower()
        if n == 2:
            return lowered[0] in VOWELS and lowered[1] not in VOWELS
        if n >= 3:
            c1, v, c2 = lowered[-3], lowered[-2], word[-1]
            return (
                c1 not in VOWELS
                and v in VOWELS
                and c2.lower() not in VOWELS
                and c2 not in ("w", "x", "Y")
            )
        return False

    @classmethod
    def _is_short(cls, word: str, r1: int) -> bool:
        return r1 >= len(word) and cls._ends_short_syllable(word)

    # -- steps ----------------------------------------------------------

    @staticmethod
    def _step0(word: str) -> str:
        for suffix in ("'s'", "'s", "'"):
            if word.endswith(suffix):
                return word[: -len(suffix)]
        return word

    @classmethod
    def _step1a(cls, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ied") or word.endswith("ies"):
            return word[:-2] if len(word) > 4 else word[:-1]
        if word.endswith("us") or word.endswith("ss"):
            return word
        if word.endswith("s"):
            # delete if the preceding word part contains a vowel not
            # immediately before the s
            if cls._contains_vowel(word[:-2]):
                return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str, r1: int) -> str:
        for suffix in ("eedly", "eed"):
            if word.endswith(suffix):
                if len(word) - len(suffix) >= r1:
                    return word[: -len(suffix)] + "ee"
                return word
        for suffix in ("ingly", "edly", "ing", "ed"):
            if word.endswith(suffix):
                stem_part = word[: -len(suffix)]
                if not cls._contains_vowel(stem_part):
                    return word
                word = stem_part
                if word.endswith(("at", "bl", "iz")):
                    return word + "e"
                if word.endswith(DOUBLES):
                    return word[:-1]
                new_r1, _ = cls._regions(word)
                if cls._is_short(word, new_r1):
                    return word + "e"
                return word
        return word

    @staticmethod
    def _step1c(word: str) -> str:
        if (
            len(word) > 2
            and word[-1] in ("y", "Y")
            and word[-2].lower() not in VOWELS
        ):
            return word[:-1] + "i"
        return word

    @classmethod
    def _step2(cls, word: str, r1: int) -> str:
        for suffix, replacement in _STEP2_SUFFIXES:
            if word.endswith(suffix):
                if len(word) - len(suffix) >= r1:
                    return word[: -len(suffix)] + replacement
                return word
        if word.endswith("ogi"):
            if len(word) - 3 >= r1 and word[-4:-3] == "l":
                return word[:-1]
            return word
        if word.endswith("li"):
            if len(word) - 2 >= r1 and word[-3:-2] in LI_ENDINGS:
                return word[:-2]
            return word
        return word

    @classmethod
    def _step3(cls, word: str, r1: int, r2: int) -> str:
        for suffix, replacement in _STEP3_SUFFIXES:
            if word.endswith(suffix):
                if len(word) - len(suffix) >= r1:
                    return word[: -len(suffix)] + replacement
                return word
        if word.endswith("ative"):
            if len(word) - 5 >= r2 and len(word) - 5 >= r1:
                return word[:-5]
        return word

    @staticmethod
    def _step4(word: str, r2: int) -> str:
        for suffix in _STEP4_SUFFIXES:
            if word.endswith(suffix):
                if len(word) - len(suffix) >= r2:
                    if suffix == "ion":
                        if word[-4:-3] in ("s", "t"):
                            return word[:-3]
                        return word
                    return word[: -len(suffix)]
                return word
        return word

    @classmethod
    def _step5(cls, word: str, r1: int, r2: int) -> str:
        if word.endswith("e"):
            if len(word) - 1 >= r2:
                return word[:-1]
            if len(word) - 1 >= r1 and not cls._ends_short_syllable(word[:-1]):
                return word[:-1]
            return word
        if word.endswith("l"):
            if len(word) - 1 >= r2 and word[-2:-1] == "l":
                return word[:-1]
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Stem *word* with a shared :class:`PorterStemmer` instance."""
    return _DEFAULT.stem(word)
