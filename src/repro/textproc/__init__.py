"""Text processing substrate (NLTK replacement).

Provides the low-level text machinery Egeria builds on: sentence
segmentation, word tokenization, Porter2 stemming, rule-based English
lemmatization, stopword filtering, and a composable normalization
pipeline used by both the recognizer (Stage I) and the retrieval layer
(Stage II).
"""

from repro.textproc.sentence_tokenizer import SentenceTokenizer, sent_tokenize
from repro.textproc.word_tokenizer import WordTokenizer, word_tokenize
from repro.textproc.porter import PorterStemmer, stem
from repro.textproc.lemmatizer import Lemmatizer, lemmatize
from repro.textproc.stopwords import STOPWORDS, is_stopword
from repro.textproc.normalize import NormalizationPipeline, normalize_tokens

__all__ = [
    "SentenceTokenizer",
    "sent_tokenize",
    "WordTokenizer",
    "word_tokenize",
    "PorterStemmer",
    "stem",
    "Lemmatizer",
    "lemmatize",
    "STOPWORDS",
    "is_stopword",
    "NormalizationPipeline",
    "normalize_tokens",
]
