"""Abbreviation-aware sentence segmentation (Punkt-style heuristics).

Vendor programming guides are full of period-bearing tokens that do
not end sentences: ``e.g.``, ``i.e.``, ``Fig.``, decimal numbers,
compute capabilities (``2.x``), version strings, API names, and
numbered section headings (``5.4.2.``).  The tokenizer treats a period
as a boundary only when the right context looks like a sentence start
and the left context is not a known abbreviation or numeric literal.
"""

from __future__ import annotations

import re

#: Tokens whose trailing period never ends a sentence.
ABBREVIATIONS: frozenset[str] = frozenset(
    {
        "e.g", "i.e", "etc", "cf", "vs", "al", "fig", "eq", "sec", "no",
        "dr", "mr", "mrs", "ms", "prof", "dept", "inc", "ltd", "co",
        "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
        "oct", "nov", "dec", "approx", "resp", "ver", "rev", "ch",
    }
)

_BOUNDARY_RE = re.compile(
    r"""
    (?P<end>[.!?])            # candidate terminator
    (?P<close>["')\]]*)       # optional closing quotes/brackets
    (?P<gap>\s+)              # whitespace gap
    (?=(?P<next>[A-Z0-9"'(\[`#]|__))   # plausible sentence start
    """,
    re.VERBOSE,
)

_NUMERIC_TAIL = re.compile(r"\d+(?:\.\d+)*$")
# Dotted section numbers ("5.4.2"); a bare integer is NOT a heading —
# "The warp size is 32." must still end a sentence.
_SECTION_HEAD = re.compile(r"^\d+(?:\.\d+)+\.?$")


class SentenceTokenizer:
    """Split running text into sentences.

    Extra abbreviations can be registered per instance, mirroring how
    a Punkt model can be extended with domain abbreviations:

    >>> tok = SentenceTokenizer(extra_abbreviations={"cuda"})
    """

    def __init__(self, extra_abbreviations: set[str] | None = None) -> None:
        self._abbrev = set(ABBREVIATIONS)
        if extra_abbreviations:
            self._abbrev |= {a.lower().rstrip(".") for a in extra_abbreviations}

    # -- public API ----------------------------------------------------

    def tokenize(self, text: str) -> list[str]:
        """Return the list of sentences in *text*."""
        text = " ".join(text.split())  # collapse all whitespace
        if not text:
            return []
        sentences: list[str] = []
        start = 0
        for match in _BOUNDARY_RE.finditer(text):
            if not self._is_boundary(text, match):
                continue
            end = match.end("close")
            sentence = text[start:end].strip()
            if sentence:
                sentences.append(sentence)
            start = match.end("gap")
        tail = text[start:].strip()
        if tail:
            sentences.append(tail)
        return sentences

    # -- heuristics -----------------------------------------------------

    def _is_boundary(self, text: str, match: re.Match[str]) -> bool:
        if match.group("end") in "!?":
            return True
        left = text[: match.start("end")]
        last_token = left.rsplit(None, 1)[-1] if left.split() else ""
        bare = last_token.lower().lstrip("(\"'").rstrip(".")
        if bare in self._abbrev:
            return False
        # "5.4.2. Control Flow" style headings: the period after a bare
        # section number is not a boundary.
        if _SECTION_HEAD.match(last_token):
            return False
        # decimal immediately left AND digit right => inside a number
        next_char = match.group("next")
        if _NUMERIC_TAIL.search(last_token) and next_char.isdigit():
            return False
        # single capital letter (middle initial, "A." enumerations)
        if re.fullmatch(r"[A-Z]", bare):
            return False
        return True


_DEFAULT = SentenceTokenizer()


def sent_tokenize(text: str) -> list[str]:
    """Split *text* into sentences with a shared tokenizer."""
    return _DEFAULT.tokenize(text)
