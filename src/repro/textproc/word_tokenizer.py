"""Treebank-style word tokenizer tuned for HPC programming guides.

Splits a sentence into word, punctuation and code tokens.  Ordinary
English is tokenized the way NLTK's ``TreebankWordTokenizer`` does
(contractions split, punctuation separated), while identifiers common
in vendor guides survive as single tokens:

* API calls — ``clWaitForEvents()``, ``cudaMemcpy()``
* dunder/underscore identifiers — ``__restrict__``, ``__syncthreads``
* compiler flags and directives — ``-maxrregcount``, ``#pragma``
* version/compute-capability literals — ``2.x``, ``3.0``, ``16-byte``
"""

from __future__ import annotations

import re

from repro.textproc.instrumentation import count_tokenize

# Token classes, ordered by priority.  The big alternation keeps code
# tokens intact before generic word/punctuation splitting applies.
_TOKEN_RE = re.compile(
    r"""
    (?P<code>
        [A-Za-z_][A-Za-z0-9_]*\(\)          # foo() style API mentions
      | __[A-Za-z0-9_]+(?:__)?              # __restrict__, __shared__
      | \#[A-Za-z]+                         # #pragma
      | -{1,2}[A-Za-z][A-Za-z0-9_-]*        # -O3, --use_fast_math
      | [A-Za-z]+(?:_[A-Za-z0-9]+)+         # snake_case identifiers
      | \d+(?:\.\d+)*\.x                    # 2.x, 3.x compute capability
      | \d+(?:\.\d+)+f?                     # 3.0, 3.141592653589793f
      | \d+-[A-Za-z]+                       # 16-byte, 32-bit
    )
  | (?P<word>
        [A-Za-z]+(?:[''][a-z]+)?            # words incl. apostrophes
      | \d+                                 # bare integers
    )
  | (?P<punct>
        \.\.\.|[.,;:!?()\[\]{}"''`%/+*=<>&|~^$@-]
    )
    """,
    re.VERBOSE,
)

# Contraction suffixes split off word tokens (Treebank behaviour).
_CONTRACTIONS = re.compile(
    r"(?i)^(.+?)(n't|'ll|'re|'ve|'s|'m|'d)$"
)


class WordTokenizer:
    """Tokenize a single sentence into tokens.

    >>> WordTokenizer().tokenize("Don't use clWaitForEvents() here.")
    ['Do', "n't", 'use', 'clWaitForEvents()', 'here', '.']
    """

    def tokenize(self, sentence: str) -> list[str]:
        count_tokenize()
        tokens: list[str] = []
        for match in _TOKEN_RE.finditer(sentence):
            text = match.group(0)
            if match.lastgroup == "word":
                split = _CONTRACTIONS.match(text)
                if split and split.group(1):
                    tokens.append(split.group(1))
                    tokens.append(split.group(2))
                    continue
            tokens.append(text)
        return tokens

    def span_tokenize(self, sentence: str) -> list[tuple[int, int]]:
        """Return (start, end) character offsets for each token."""
        spans: list[tuple[int, int]] = []
        for match in _TOKEN_RE.finditer(sentence):
            text = match.group(0)
            start = match.start()
            if match.lastgroup == "word":
                split = _CONTRACTIONS.match(text)
                if split and split.group(1):
                    cut = start + len(split.group(1))
                    spans.append((start, cut))
                    spans.append((cut, match.end()))
                    continue
            spans.append((start, match.end()))
        return spans


_DEFAULT = WordTokenizer()


def word_tokenize(sentence: str) -> list[str]:
    """Tokenize *sentence* with a shared :class:`WordTokenizer`."""
    return _DEFAULT.tokenize(sentence)
