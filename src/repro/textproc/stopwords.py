"""English stopword list (NLTK-compatible superset).

The list mirrors NLTK's classic English stopword inventory plus a few
document-navigation words that are noise in programming guides
("section", "chapter", "figure").  Stage II drops stopwords before
TF-IDF vectorization; Stage I keeps them because the syntactic
selectors need function words intact.
"""

from __future__ import annotations

_CORE = """
a about above after again against all am an and any are aren't as at
be because been before being below between both but by can't cannot
could couldn't did didn't do does doesn't doing don't down during
each few for from further had hadn't has hasn't have haven't having
he he'd he'll he's her here here's hers herself him himself his how
how's i i'd i'll i'm i've if in into is isn't it it's its itself
let's me more most mustn't my myself no nor not of off on once only
or other ought our ours ourselves out over own same shan't she she'd
she'll she's should shouldn't so some such than that that's the their
theirs them themselves then there there's these they they'd they'll
they're they've this those through to too under until up very was
wasn't we we'd we'll we're we've were weren't what what's when when's
where where's which while who who's whom why why's with won't would
wouldn't you you'd you'll you're you've your yours yourself yourselves
""".split()

_DOCUMENT_NOISE = """
also e.g. i.e. etc section chapter figure table page see shown
""".split()

STOPWORDS: frozenset[str] = frozenset(_CORE) | frozenset(_DOCUMENT_NOISE)


def is_stopword(token: str) -> bool:
    """True if *token* (case-insensitively) is an English stopword."""
    return token.lower() in STOPWORDS
