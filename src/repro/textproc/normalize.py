"""Token normalization pipeline for retrieval.

Stage II (knowledge recommendation) vectorizes sentences after a
normalization pass: lowercase, tokenize, drop punctuation/stopwords,
stem.  The pipeline is composable so experiments can ablate individual
steps (e.g. the paper's observation that dropping stemming from the
keywords baseline lowers recall, §4.2).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.textproc.porter import PorterStemmer
from repro.textproc.stopwords import is_stopword
from repro.textproc.word_tokenizer import WordTokenizer

_PUNCT = set(".,;:!?()[]{}\"'`%/+*=<>&|~^$@-") | {"..."}


def _is_punct(token: str) -> bool:
    return all(ch in _PUNCT or ch in ".,;:!?()[]{}\"'`%/+*=<>&|~^$@-"
               for ch in token) if token else True


class NormalizationPipeline:
    """Configurable text -> token-stream normalizer.

    Parameters
    ----------
    lowercase, drop_punct, drop_stopwords, stem:
        Toggles for each normalization step, all on by default.
    min_length:
        Tokens shorter than this (after normalization) are dropped.
    extra_filters:
        Optional extra predicates; a token must pass all of them.
    """

    def __init__(
        self,
        lowercase: bool = True,
        drop_punct: bool = True,
        drop_stopwords: bool = True,
        stem: bool = True,
        min_length: int = 1,
        extra_filters: Iterable[Callable[[str], bool]] = (),
    ) -> None:
        self.lowercase = lowercase
        self.drop_punct = drop_punct
        self.drop_stopwords = drop_stopwords
        self.stem = stem
        self.min_length = min_length
        self.extra_filters = tuple(extra_filters)
        self._tokenizer = WordTokenizer()
        self._stemmer = PorterStemmer()

    def __call__(self, text: str) -> list[str]:
        return self.normalize(text)

    def normalize(self, text: str) -> list[str]:
        """Normalize raw *text* to a token list."""
        return self.normalize_tokens(self._tokenizer.tokenize(text))

    def normalize_tokens(self, tokens: Iterable[str]) -> list[str]:
        """Normalize an already-tokenized sequence."""
        out: list[str] = []
        for token in tokens:
            if self.drop_punct and _is_punct(token):
                continue
            if self.drop_stopwords and is_stopword(token):
                continue
            if self.lowercase:
                token = token.lower()
            if self.stem:
                token = self._stemmer.stem(token)
            if len(token) < self.min_length:
                continue
            if any(not keep(token) for keep in self.extra_filters):
                continue
            out.append(token)
        return out


_DEFAULT = NormalizationPipeline()


def normalize_tokens(text: str) -> list[str]:
    """Normalize *text* with the default pipeline (all steps on)."""
    return _DEFAULT.normalize(text)
