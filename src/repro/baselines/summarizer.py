"""TextRank extractive summarizer (document-summarization baseline).

§3.1 distinguishes advising-sentence recognition from document
summarization: "It focuses on finding the most informative sentences,
which may not be advising sentences."  This baseline makes that
argument measurable: a standard TextRank summarizer (Mihalcea & Tarau
2004 — PageRank over the sentence cosine-similarity graph) selects the
same *number* of sentences Egeria selects, and its precision/recall
against the advising labels quantifies how different "informative"
is from "advising".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import networkx as nx
import numpy as np

from repro.retrieval.tfidf import TfidfModel
from repro.textproc.normalize import NormalizationPipeline


class TextRankSummarizer:
    """Rank sentences by PageRank centrality in the similarity graph."""

    def __init__(
        self,
        normalizer: Callable[[str], list[str]] | None = None,
        similarity_threshold: float = 0.1,
        damping: float = 0.85,
    ) -> None:
        self.normalizer = normalizer or NormalizationPipeline()
        self.similarity_threshold = similarity_threshold
        self.damping = damping

    def rank(self, sentences: Sequence[str]) -> np.ndarray:
        """TextRank score per sentence."""
        docs = [self.normalizer(s) for s in sentences]
        tfidf = TfidfModel(docs)
        vectors = np.stack([tfidf.transform_dense(d) for d in docs]) \
            if docs else np.zeros((0, 0))
        norms = np.linalg.norm(vectors, axis=1)
        norms[norms == 0.0] = 1.0
        unit = vectors / norms[:, None]
        similarity = unit @ unit.T
        np.fill_diagonal(similarity, 0.0)
        similarity[similarity < self.similarity_threshold] = 0.0

        graph = nx.from_numpy_array(similarity)
        scores = nx.pagerank(graph, alpha=self.damping, weight="weight")
        return np.array([scores[i] for i in range(len(sentences))])

    def summarize(
        self, sentences: Sequence[str], k: int
    ) -> list[int]:
        """Indices of the top-k most central sentences (sorted)."""
        if not sentences or k <= 0:
            return []
        scores = self.rank(sentences)
        top = np.argsort(-scores, kind="stable")[:k]
        return sorted(int(i) for i in top)
