"""Full-doc baseline (paper §4.2).

"This method also queries the original programming guide without first
extracting advising sentences.  Unlike the keywords method, this
method does not use keywords, but uses the same knowledge
recommendation method as Egeria uses — that is, through the use of VSM
and TF-IDF techniques."

Because advising sentences are a subset of the document, this method
finds everything Egeria finds, plus many relevant-but-not-advising
sentences — hence its high recall / low precision in Table 6.
"""

from __future__ import annotations

from repro.core.recommender import Recommendation
from repro.docs.document import Document
from repro.retrieval.vsm import DEFAULT_THRESHOLD, SentenceRetriever
from repro.textproc.normalize import NormalizationPipeline


class FullDocMethod:
    """Stage II retrieval over the whole document (no Stage I)."""

    def __init__(
        self, document: Document, threshold: float = DEFAULT_THRESHOLD
    ) -> None:
        self.document = document
        self.sentences = document.sentences
        self._retriever = SentenceRetriever(
            [s.text for s in self.sentences],
            normalizer=NormalizationPipeline(),
            threshold=threshold,
        )

    def query(self, text: str, threshold: float | None = None
              ) -> list[Recommendation]:
        """All document sentences scoring >= threshold, best first."""
        return [
            Recommendation(self.sentences[i], score)
            for i, score in self._retriever.query(text, threshold)
        ]
