"""Keywords baseline (paper §4.2).

"This method uses keywords in the input query to directly search the
original programming guide to find relevant sentences.  Both the
keywords and the words in the document are reduced to their stem forms
to allow matchings among different variants of a word."

A multi-word keyword ("warp execution efficiency") requires every
component term to appear (stemmed) in the sentence.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.docs.document import Document, Sentence
from repro.retrieval.index import InvertedIndex


class KeywordsMethod:
    """Stemmed keyword search over the full document."""

    def __init__(self, document: Document, use_stemming: bool = True) -> None:
        self.document = document
        self.sentences = document.sentences
        self.use_stemming = use_stemming
        analyzer = None if use_stemming else _no_stem_analyzer
        self._index = InvertedIndex(
            [s.text for s in self.sentences], analyzer=analyzer)

    def search(self, keyword: str) -> list[Sentence]:
        """Sentences containing every term of *keyword* (stemmed)."""
        hits = self._index.search_phrase_terms(keyword.split())
        return [self.sentences[i] for i in hits]

    def best_keyword(
        self,
        candidates: Sequence[str],
        gold: set[int],
    ) -> tuple[str, float]:
        """Pick the candidate keyword with the highest F-measure
        against *gold* sentence indices — replicating how the paper
        "tried a number of keywords for each performance issue" and
        reports the best."""
        from repro.eval.metrics import precision_recall_f

        best_kw, best_f = candidates[0], -1.0
        for keyword in candidates:
            predicted = {s.index for s in self.search(keyword)}
            _, _, f_measure = precision_recall_f(predicted, gold)
            if f_measure > best_f:
                best_kw, best_f = keyword, f_measure
        return best_kw, best_f


def _no_stem_analyzer(text: str) -> list[str]:
    """Lowercased whole-word analyzer for the no-stemming ablation
    (§4.2: 'Without stemming ... the overall results would be even
    worse')."""
    return [t.lower() for t in text.split()]
