"""Supervised baseline: multinomial Naive Bayes sentence classifier.

§2 dismisses supervised learning for advising-sentence recognition on
practicality grounds: "This method requires a large volume of labeled
data ... Given the scarcity of labeled data in HPC advising and the
large amount of manual labeling efforts this method requires, this
method is not a practical option."

This classifier makes the trade-off measurable: trained on *n* labeled
sentences and evaluated against Egeria's zero-training recognizer, it
shows how much annotation the supervised route needs before it matches
the keyword/syntax/semantics cascade — the learning-curve experiment
``bench_supervised_baseline.py`` reproduces the paper's argument
quantitatively.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Callable, Sequence

from repro.textproc.normalize import NormalizationPipeline


class NaiveBayesClassifier:
    """Multinomial NB over normalized (stemmed) token counts."""

    def __init__(
        self,
        normalizer: Callable[[str], list[str]] | None = None,
        alpha: float = 1.0,
    ) -> None:
        self.normalizer = normalizer or NormalizationPipeline()
        self.alpha = alpha
        self._log_prior: dict[bool, float] = {}
        self._log_likelihood: dict[bool, dict[str, float]] = {}
        self._default_ll: dict[bool, float] = {}
        self._trained = False

    def train(
        self, sentences: Sequence[str], labels: Sequence[bool]
    ) -> None:
        if len(sentences) != len(labels):
            raise ValueError("sentences and labels length mismatch")
        if not sentences:
            raise ValueError("cannot train on an empty corpus")
        token_counts: dict[bool, Counter] = {True: Counter(),
                                             False: Counter()}
        class_counts: Counter = Counter()
        for text, label in zip(sentences, labels):
            class_counts[bool(label)] += 1
            token_counts[bool(label)].update(self.normalizer(text))

        vocabulary = set(token_counts[True]) | set(token_counts[False])
        v = max(len(vocabulary), 1)
        total = sum(class_counts.values())
        for label in (True, False):
            # Laplace-smoothed prior so a single-class sample stays sane
            self._log_prior[label] = math.log(
                (class_counts[label] + self.alpha)
                / (total + 2 * self.alpha))
            denom = sum(token_counts[label].values()) + self.alpha * v
            self._log_likelihood[label] = {
                token: math.log((count + self.alpha) / denom)
                for token, count in token_counts[label].items()
            }
            self._default_ll[label] = math.log(self.alpha / denom)
        self._trained = True

    def log_odds(self, text: str) -> float:
        """log P(advising|text) - log P(other|text) (unnormalized)."""
        if not self._trained:
            raise RuntimeError("classifier not trained")
        score = self._log_prior[True] - self._log_prior[False]
        for token in self.normalizer(text):
            score += self._log_likelihood[True].get(
                token, self._default_ll[True])
            score -= self._log_likelihood[False].get(
                token, self._default_ll[False])
        return score

    def predict(self, text: str) -> bool:
        return self.log_odds(text) > 0.0

    def accuracy(
        self, sentences: Sequence[str], labels: Sequence[bool]
    ) -> float:
        correct = sum(self.predict(t) == bool(l)
                      for t, l in zip(sentences, labels))
        return correct / len(sentences) if sentences else 0.0
