"""KeywordAll baseline (paper Table 8, sixth row).

"...we apply the first selector (the keyword-based selector) but use
the union of all the keywords used in all selectors as the replacement
of the FLAGGING_WORDS."  High recall, poor precision: any sentence
mentioning *programmer* or *use* gets selected.
"""

from __future__ import annotations

from repro.core.keywords import KeywordConfig
from repro.core.recognizer import AdvisingSentenceRecognizer
from repro.core.selectors import KeywordSelector


class KeywordAllRecognizer(AdvisingSentenceRecognizer):
    """Keyword selector over the union of all five keyword sets."""

    def __init__(self, keywords: KeywordConfig | None = None,
                 workers: int = 1) -> None:
        config = keywords or KeywordConfig()
        selector = KeywordSelector(config, words=config.all_keywords())
        super().__init__(keywords=config, selectors=[selector],
                         workers=workers)
