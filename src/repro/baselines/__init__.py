"""Baseline methods the paper compares Egeria against.

§4.2 (answer quality, Table 6):

* :class:`~repro.baselines.keywords_method.KeywordsMethod` — stemmed
  keyword search directly on the original document;
* :class:`~repro.baselines.fulldoc_method.FullDocMethod` — the same
  VSM/TF-IDF recommendation as Egeria's Stage II but over the whole
  document (no advising-sentence recognition).

§4.3 (recognition quality, Table 8):

* :class:`~repro.baselines.single_selector.SingleSelectorRecognizer` —
  each of the five selectors used alone;
* :class:`~repro.baselines.keyword_all.KeywordAllRecognizer` — the
  keyword selector with the union of every keyword set.
"""

from repro.baselines.keywords_method import KeywordsMethod
from repro.baselines.fulldoc_method import FullDocMethod
from repro.baselines.keyword_all import KeywordAllRecognizer
from repro.baselines.single_selector import SingleSelectorRecognizer
from repro.baselines.summarizer import TextRankSummarizer
from repro.baselines.supervised import NaiveBayesClassifier

__all__ = [
    "KeywordsMethod",
    "FullDocMethod",
    "KeywordAllRecognizer",
    "SingleSelectorRecognizer",
    "TextRankSummarizer",
    "NaiveBayesClassifier",
]
