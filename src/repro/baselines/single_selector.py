"""Single-selector baselines (paper Table 8, rows 1-5).

Each of Egeria's five selectors used alone: high precision on its own
category, low recall overall — the evidence for the multilayered
design (§4.3).
"""

from __future__ import annotations

from repro.core.keywords import KeywordConfig
from repro.core.recognizer import AdvisingSentenceRecognizer
from repro.core.selectors import (
    ImperativeSelector,
    KeywordSelector,
    PurposeSelector,
    SubjectSelector,
    XcompSelector,
)

_SELECTOR_TYPES = {
    "keyword": KeywordSelector,
    "comparative": XcompSelector,
    "imperative": ImperativeSelector,
    "subject": SubjectSelector,
    "purpose": PurposeSelector,
}


class SingleSelectorRecognizer(AdvisingSentenceRecognizer):
    """Recognizer running exactly one of the five selectors."""

    def __init__(self, selector_name: str,
                 keywords: KeywordConfig | None = None,
                 workers: int = 1) -> None:
        try:
            selector_type = _SELECTOR_TYPES[selector_name]
        except KeyError:
            raise ValueError(
                f"unknown selector {selector_name!r}; choose from "
                f"{sorted(_SELECTOR_TYPES)}") from None
        config = keywords or KeywordConfig()
        super().__init__(keywords=config,
                         selectors=[selector_type(config)],
                         workers=workers)


def all_single_selector_recognizers(
    keywords: KeywordConfig | None = None,
) -> dict[str, SingleSelectorRecognizer]:
    """One recognizer per selector, keyed by name (Table 8 rows)."""
    return {
        name: SingleSelectorRecognizer(name, keywords=keywords)
        for name in _SELECTOR_TYPES
    }
