"""HTML document loader (stdlib ``html.parser`` based).

Parses vendor-guide-style HTML: ``<h1>``-``<h6>`` headings define the
section tree (a numeric prefix like ``5.4.2.`` in the heading text
becomes the section number), and ``<p>`` / ``<li>`` / ``<td>`` text is
sentence-split into the owning section.  Script/style content and
``<pre>`` code blocks are skipped, mirroring how the paper's loader
extracts "a sequence of text blocks".
"""

from __future__ import annotations

import re
from html.parser import HTMLParser

from repro.docs.document import Document, Section, Sentence
from repro.textproc.sentence_tokenizer import SentenceTokenizer

_HEADING = re.compile(r"^h([1-6])$")
_NUMBER_PREFIX = re.compile(r"^\s*(\d+(?:\.\d+)*)\.?\s+(.*)$")
_SKIP_CONTENT = frozenset({"script", "style", "pre", "code"})
_TEXT_BLOCK_CLOSERS = frozenset({"p", "li", "td", "dd", "blockquote"})


class _GuideHTMLParser(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.title = ""
        self.root_sections: list[Section] = []
        self._stack: list[Section] = []
        self._skip_depth = 0
        self._in_title = False
        self._text_parts: list[str] = []
        self._heading_level: int | None = None
        self._tokenizer = SentenceTokenizer()

    # -- tag events -------------------------------------------------------

    def handle_starttag(self, tag: str, attrs) -> None:
        if tag in _SKIP_CONTENT:
            self._skip_depth += 1
            return
        if tag == "title":
            self._in_title = True
            return
        match = _HEADING.match(tag)
        if match:
            self._flush_text_block()
            self._heading_level = int(match.group(1))
            self._text_parts = []

    def handle_endtag(self, tag: str) -> None:
        if tag in _SKIP_CONTENT:
            self._skip_depth = max(0, self._skip_depth - 1)
            return
        if tag == "title":
            self._in_title = False
            return
        if _HEADING.match(tag) and self._heading_level is not None:
            self._open_section(
                " ".join("".join(self._text_parts).split()),
                self._heading_level,
            )
            self._heading_level = None
            self._text_parts = []
            return
        if tag in _TEXT_BLOCK_CLOSERS:
            self._flush_text_block()

    def handle_data(self, data: str) -> None:
        if self._skip_depth:
            return
        if self._in_title:
            self.title += data.strip()
            return
        self._text_parts.append(data)

    # -- assembly ------------------------------------------------------------

    def _open_section(self, heading: str, level: int) -> None:
        number, title = "", heading
        match = _NUMBER_PREFIX.match(heading)
        if match:
            number, title = match.group(1), match.group(2)
        section = Section(number=number, title=title, level=level)
        while self._stack and self._stack[-1].level >= level:
            self._stack.pop()
        if self._stack:
            self._stack[-1].subsections.append(section)
        else:
            self.root_sections.append(section)
        self._stack.append(section)

    def _current_section(self) -> Section:
        if not self._stack:
            # preamble text before any heading
            section = Section(title="", level=0)
            self.root_sections.append(section)
            self._stack.append(section)
        return self._stack[-1]

    def _flush_text_block(self) -> None:
        text = " ".join("".join(self._text_parts).split())
        self._text_parts = []
        if not text:
            return
        section = self._current_section()
        for sentence_text in self._tokenizer.tokenize(text):
            section.sentences.append(Sentence(text=sentence_text, index=-1))

    def close(self) -> None:
        self._flush_text_block()
        super().close()


class HTMLDocumentLoader:
    """Load an HTML string or file into a :class:`Document`."""

    def load(self, html: str, title: str | None = None) -> Document:
        from repro.resilience.faults import fault_point

        fault_point("loader.html")
        parser = _GuideHTMLParser()
        parser.feed(html)
        parser.close()
        document = Document(
            title=title or parser.title or "untitled",
            sections=parser.root_sections,
        )
        document.reindex()
        return document

    def load_file(self, path: str, title: str | None = None) -> Document:
        with open(path, encoding="utf-8") as handle:
            return self.load(handle.read(), title=title)


def load_html(html: str, title: str | None = None) -> Document:
    """Convenience wrapper around :class:`HTMLDocumentLoader`."""
    return HTMLDocumentLoader().load(html, title=title)
