"""Markdown document loader.

ATX headings (``#`` .. ``######``) define the section tree; paragraph
and list-item text is sentence-split.  Fenced code blocks are skipped.
Provided so advising tools can be synthesized from Markdown-format
guides (e.g. best-practice documents kept in repositories).
"""

from __future__ import annotations

import re

from repro.docs.document import Document, Section, Sentence
from repro.textproc.sentence_tokenizer import SentenceTokenizer

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_NUMBER_PREFIX = re.compile(r"^\s*(\d+(?:\.\d+)*)\.?\s+(.*)$")
_FENCE = re.compile(r"^(```|~~~)")
_LIST_ITEM = re.compile(r"^\s*(?:[-*+]|\d+\.)\s+(.*)$")


class MarkdownDocumentLoader:
    """Load Markdown text into a :class:`Document`."""

    def __init__(self) -> None:
        self._tokenizer = SentenceTokenizer()

    def load(self, text: str, title: str | None = None) -> Document:
        from repro.resilience.faults import fault_point

        fault_point("loader.markdown")
        root_sections: list[Section] = []
        stack: list[Section] = []
        doc_title = title or "untitled"
        in_fence = False
        paragraph: list[str] = []

        def current() -> Section:
            if not stack:
                section = Section(title="", level=0)
                root_sections.append(section)
                stack.append(section)
            return stack[-1]

        def flush() -> None:
            if not paragraph:
                return
            text_block = " ".join(" ".join(paragraph).split())
            paragraph.clear()
            if not text_block:
                return
            section = current()
            for sentence in self._tokenizer.tokenize(text_block):
                section.sentences.append(Sentence(text=sentence, index=-1))

        for line in text.splitlines():
            if _FENCE.match(line):
                flush()
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            heading = _HEADING.match(line)
            if heading:
                flush()
                level = len(heading.group(1))
                raw = heading.group(2)
                number, heading_title = "", raw
                numbered = _NUMBER_PREFIX.match(raw)
                if numbered:
                    number, heading_title = numbered.group(1), numbered.group(2)
                if level == 1 and title is None and doc_title == "untitled":
                    doc_title = heading_title
                section = Section(number=number, title=heading_title,
                                  level=level)
                while stack and stack[-1].level >= level:
                    stack.pop()
                if stack:
                    stack[-1].subsections.append(section)
                else:
                    root_sections.append(section)
                stack.append(section)
                continue
            item = _LIST_ITEM.match(line)
            if item:
                flush()
                paragraph.append(item.group(1))
                flush()
                continue
            if not line.strip():
                flush()
                continue
            paragraph.append(line.strip())
        flush()

        document = Document(title=doc_title, sections=root_sections)
        document.reindex()
        return document

    def load_file(self, path: str, title: str | None = None) -> Document:
        with open(path, encoding="utf-8") as handle:
            return self.load(handle.read(), title=title)


def load_markdown(text: str, title: str | None = None) -> Document:
    """Convenience wrapper around :class:`MarkdownDocumentLoader`."""
    return MarkdownDocumentLoader().load(text, title=title)
