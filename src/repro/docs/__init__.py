"""Document model and loaders.

Egeria is "equipped with a document loader ... [that] extracts out all
the contained sentences, and at the same time, infers the document
structure (e.g., chapter, section, etc.) based on the indices or the
HTML header tags" (paper §3.2).  This package provides that loader for
HTML and Markdown inputs plus the in-memory document model the rest of
the system operates on.
"""

from repro.docs.document import Document, Section, Sentence
from repro.docs.html_loader import HTMLDocumentLoader, load_html
from repro.docs.markdown_loader import MarkdownDocumentLoader, load_markdown
from repro.docs.text_loader import TextDocumentLoader, load_text

__all__ = [
    "Document",
    "Section",
    "Sentence",
    "HTMLDocumentLoader",
    "load_html",
    "MarkdownDocumentLoader",
    "load_markdown",
    "TextDocumentLoader",
    "load_text",
]
