"""Render a :class:`Document` back to guide-style HTML.

Together with :mod:`repro.docs.html_loader` this closes the loop: the
synthetic corpora can be exported as the HTML files the paper's tools
actually consumed, and the loader path is exercised at full document
scale (see ``tests/test_html_roundtrip.py``).
"""

from __future__ import annotations

import html as _html

from repro.docs.document import Document, Section

_PAGE = """<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>{title}</title></head>
<body>
{body}
</body>
</html>
"""


def _render_section(section: Section, depth: int = 1) -> list[str]:
    parts: list[str] = []
    level = min(max(section.level if section.level > 0 else depth, 1), 6)
    heading = section.heading
    if heading:
        parts.append(f"<h{level}>{_html.escape(heading)}</h{level}>")
    if section.sentences:
        text = " ".join(_html.escape(s.text) for s in section.sentences)
        parts.append(f"<p>{text}</p>")
    for sub in section.subsections:
        parts.extend(_render_section(sub, depth + 1))
    return parts


def document_to_html(document: Document) -> str:
    """Serialize *document* as guide-style HTML."""
    parts: list[str] = []
    for section in document.sections:
        parts.extend(_render_section(section))
    return _PAGE.format(title=_html.escape(document.title or "untitled"),
                        body="\n".join(parts))


def save_html(document: Document, path: str) -> None:
    """Write :func:`document_to_html` output to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document_to_html(document))
