"""Plain-text document loader with structure inference.

The paper's loader "infers the document structure (e.g., chapter,
section, etc.) based on the indices or the HTML header tags" (§3.2).
For plain-text guides (man pages, README-style best-practice notes)
there are no tags, so the indices carry the structure: a line like

    5.4.2. Control Flow Instructions

is recognized as a heading from its dotted number, short length, and
lack of terminal punctuation; ALL-CAPS lines are treated as unnumbered
headings.  Everything else is paragraph text, sentence-split into the
current section.
"""

from __future__ import annotations

import re

from repro.docs.document import Document, Section, Sentence
from repro.textproc.sentence_tokenizer import SentenceTokenizer

_NUMBERED_HEADING = re.compile(
    r"^\s*(\d+(?:\.\d+)*)\.?\s+(\S.{0,79}?)\s*$")
_CAPS_HEADING = re.compile(r"^\s*([A-Z][A-Z0-9 \-]{3,60})\s*$")


def _looks_like_heading(line: str) -> tuple[str, str] | None:
    """(number, title) for a heading line, else None."""
    match = _NUMBERED_HEADING.match(line)
    if match:
        title = match.group(2)
        # headings don't end in sentence punctuation and are short
        if not title.endswith((".", ",", ";", ":")) and len(title) < 80:
            return match.group(1), title
    caps = _CAPS_HEADING.match(line)
    if caps and not line.rstrip().endswith("."):
        return "", caps.group(1).title()
    return None


class TextDocumentLoader:
    """Load plain text into a :class:`Document` with inferred sections."""

    def __init__(self) -> None:
        self._tokenizer = SentenceTokenizer()

    def load(self, text: str, title: str | None = None) -> Document:
        from repro.resilience.faults import fault_point

        fault_point("loader.text")
        root_sections: list[Section] = []
        stack: list[Section] = []
        paragraph: list[str] = []

        def current() -> Section:
            if not stack:
                section = Section(title="", level=0)
                root_sections.append(section)
                stack.append(section)
            return stack[-1]

        def flush() -> None:
            if not paragraph:
                return
            block = " ".join(" ".join(paragraph).split())
            paragraph.clear()
            if not block:
                return
            section = current()
            for sentence in self._tokenizer.tokenize(block):
                section.sentences.append(Sentence(text=sentence, index=-1))

        for line in text.splitlines():
            if not line.strip():
                flush()
                continue
            heading = _looks_like_heading(line)
            if heading is not None:
                flush()
                number, heading_title = heading
                level = number.count(".") + 1 if number else 1
                section = Section(number=number, title=heading_title,
                                  level=level)
                while stack and stack[-1].level >= level:
                    stack.pop()
                if stack:
                    stack[-1].subsections.append(section)
                else:
                    root_sections.append(section)
                stack.append(section)
                continue
            paragraph.append(line.strip())
        flush()

        document = Document(title=title or "untitled",
                            sections=root_sections)
        document.reindex()
        return document

    def load_file(self, path: str, title: str | None = None) -> Document:
        with open(path, encoding="utf-8") as handle:
            return self.load(handle.read(), title=title or path)


def load_text(text: str, title: str | None = None) -> Document:
    """Convenience wrapper around :class:`TextDocumentLoader`."""
    return TextDocumentLoader().load(text, title=title)
