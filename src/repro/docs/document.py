"""In-memory document model: Document -> Section tree -> Sentence.

The structure powers two paper features: answers are shown "with the
hyper references associated with the sentences that link to the
paragraph in the original document" (§3.2), and the advising summary
groups sentences under their section headings (Figure 4).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass
class Sentence:
    """One sentence with its position and owning section."""

    text: str
    index: int                      # global sentence index in the document
    section_number: str = ""        # e.g. "5.4.2"
    section_title: str = ""         # e.g. "Control Flow Instructions"
    #: optional ground-truth advising label carried by labeled corpora
    #: (None = unlabeled); never read by the recognizer itself.
    label: bool | None = None

    @property
    def section_path(self) -> str:
        if self.section_number and self.section_title:
            return f"{self.section_number}. {self.section_title}"
        return self.section_title or self.section_number


@dataclass
class Section:
    """A document section with nested subsections."""

    number: str = ""                # dotted index, e.g. "5.4"
    title: str = ""
    level: int = 1
    sentences: list[Sentence] = field(default_factory=list)
    subsections: list["Section"] = field(default_factory=list)

    def iter_sections(self) -> Iterator["Section"]:
        """This section and all descendants, pre-order."""
        yield self
        for sub in self.subsections:
            yield from sub.iter_sections()

    def iter_sentences(self) -> Iterator[Sentence]:
        """All sentences in this section and its descendants."""
        for section in self.iter_sections():
            yield from section.sentences

    @property
    def heading(self) -> str:
        if self.number:
            return f"{self.number}. {self.title}"
        return self.title


@dataclass
class Document:
    """A loaded document: a title, a section tree, and page count."""

    title: str = ""
    sections: list[Section] = field(default_factory=list)
    pages: int = 0

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_sentences(
        cls, sentences: list[str], title: str = "untitled"
    ) -> "Document":
        """Wrap a flat list of sentence strings into a document."""
        section = Section(title=title)
        section.sentences = [
            Sentence(text=s, index=i) for i, s in enumerate(sentences)
        ]
        return cls(title=title, sections=[section])

    @classmethod
    def from_text(cls, text: str, title: str = "untitled") -> "Document":
        """Sentence-split running *text* into a single-section document."""
        from repro.textproc.sentence_tokenizer import sent_tokenize

        return cls.from_sentences(sent_tokenize(text), title=title)

    # -- queries -------------------------------------------------------------

    def iter_sections(self) -> Iterator[Section]:
        for section in self.sections:
            yield from section.iter_sections()

    def iter_sentences(self) -> Iterator[Sentence]:
        for section in self.iter_sections():
            yield from section.sentences

    @property
    def sentences(self) -> list[Sentence]:
        return list(self.iter_sentences())

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_sentences())

    def section_of(self, sentence: Sentence) -> Section | None:
        """The section object owning *sentence*."""
        for section in self.iter_sections():
            if sentence in section.sentences:
                return section
        return None

    def find_section(self, number: str) -> Section | None:
        """Look up a section by its dotted number (e.g. "5.4.2")."""
        for section in self.iter_sections():
            if section.number == number:
                return section
        return None

    def reindex(self) -> None:
        """Renumber all sentences' global indices in document order and
        refresh their section back-references."""
        index = 0
        for section in self.iter_sections():
            for sentence in section.sentences:
                sentence.index = index
                sentence.section_number = section.number
                sentence.section_title = section.title
                index += 1
