"""Minimal PDF 1.4 writer.

Generates standards-conforming single- or multi-page text PDFs: one
content stream per page drawing lines of text with the ``Tj`` operator
in Helvetica, a correct cross-reference table, and optional
FlateDecode-compressed content streams.  Feature-scoped to what the
NVVP-report round trip needs, but the output opens in any PDF viewer.
"""

from __future__ import annotations

import zlib

PAGE_WIDTH = 612   # US Letter, points
PAGE_HEIGHT = 792
MARGIN = 54
FONT_SIZE = 10
LEADING = 13

_LINES_PER_PAGE = (PAGE_HEIGHT - 2 * MARGIN) // LEADING


def _escape_text(text: str) -> str:
    """Escape a string for a PDF literal string object."""
    out = []
    for ch in text:
        if ch in "\\()":
            out.append("\\" + ch)
        elif ord(ch) < 32 or ord(ch) > 126:
            out.append(f"\\{ord(ch) & 0xFF:03o}")
        else:
            out.append(ch)
    return "".join(out)


class PDFWriter:
    """Accumulate text lines, then serialize a PDF document."""

    def __init__(self, compress: bool = True) -> None:
        self.compress = compress
        self._lines: list[str] = []

    # -- content -----------------------------------------------------------

    def add_line(self, line: str = "") -> None:
        """Append one line of text (empty string = blank line)."""
        self._lines.append(line)

    def add_text(self, text: str) -> None:
        """Append multi-line *text*."""
        for line in text.splitlines():
            self.add_line(line)

    # -- serialization --------------------------------------------------------

    def tobytes(self) -> bytes:
        """Serialize the accumulated text as a PDF file."""
        pages = [self._lines[i:i + _LINES_PER_PAGE]
                 for i in range(0, max(len(self._lines), 1),
                                _LINES_PER_PAGE)]
        objects: list[bytes] = []

        # object numbering: 1 catalog, 2 pages tree, 3 font,
        # then (content, page) pairs
        n_pages = len(pages)
        page_object_numbers = [4 + 2 * i + 1 for i in range(n_pages)]
        kids = " ".join(f"{num} 0 R" for num in page_object_numbers)

        objects.append(b"<< /Type /Catalog /Pages 2 0 R >>")
        objects.append(
            f"<< /Type /Pages /Kids [{kids}] /Count {n_pages} >>"
            .encode("ascii"))
        objects.append(
            b"<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>")

        for index, page_lines in enumerate(pages):
            stream = self._page_stream(page_lines)
            if self.compress:
                data = zlib.compress(stream)
                header = (f"<< /Length {len(data)} /Filter /FlateDecode >>"
                          .encode("ascii"))
            else:
                data = stream
                header = f"<< /Length {len(data)} >>".encode("ascii")
            objects.append(
                header + b"\nstream\n" + data + b"\nendstream")
            objects.append(
                (f"<< /Type /Page /Parent 2 0 R "
                 f"/MediaBox [0 0 {PAGE_WIDTH} {PAGE_HEIGHT}] "
                 f"/Contents {4 + 2 * index} 0 R "
                 f"/Resources << /Font << /F1 3 0 R >> >> >>")
                .encode("ascii"))

        return self._assemble(objects)

    def write(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.tobytes())

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _page_stream(lines: list[str]) -> bytes:
        parts = ["BT", f"/F1 {FONT_SIZE} Tf", f"{LEADING} TL",
                 f"{MARGIN} {PAGE_HEIGHT - MARGIN} Td"]
        for line in lines:
            if line:
                parts.append(f"({_escape_text(line)}) Tj")
            parts.append("T*")
        parts.append("ET")
        return "\n".join(parts).encode("latin-1")

    @staticmethod
    def _assemble(objects: list[bytes]) -> bytes:
        buffer = bytearray(b"%PDF-1.4\n%\xe2\xe3\xcf\xd3\n")
        offsets: list[int] = []
        for number, body in enumerate(objects, start=1):
            offsets.append(len(buffer))
            buffer += f"{number} 0 obj\n".encode("ascii")
            buffer += body
            buffer += b"\nendobj\n"
        xref_offset = len(buffer)
        buffer += f"xref\n0 {len(objects) + 1}\n".encode("ascii")
        buffer += b"0000000000 65535 f \n"
        for offset in offsets:
            buffer += f"{offset:010d} 00000 n \n".encode("ascii")
        buffer += (
            f"trailer\n<< /Size {len(objects) + 1} /Root 1 0 R >>\n"
            f"startxref\n{xref_offset}\n%%EOF\n"
        ).encode("ascii")
        return bytes(buffer)


def text_to_pdf(text: str, compress: bool = True) -> bytes:
    """One-call conversion of plain text to PDF bytes."""
    writer = PDFWriter(compress=compress)
    writer.add_text(text)
    return writer.tobytes()
