"""Minimal PDF substrate (Textract replacement for NVVP reports).

The paper's advising tools accept "a performance report of a program
execution" uploaded as "a PDF file output from NVIDIA NVVP" (§3.2);
the artifact handled the parsing with Textract.  Neither NVVP nor
Textract is available offline, so this package provides both ends of
that pipeline:

* :mod:`repro.pdf.writer` — a small PDF 1.4 generator (text pages,
  Helvetica, optional FlateDecode compression) used to produce
  synthetic NVVP report PDFs;
* :mod:`repro.pdf.reader` — a text extractor that parses PDF objects,
  inflates FlateDecode streams, and interprets the text-showing
  operators (``Tj``, ``TJ``, ``'``) with line-break heuristics;
* :mod:`repro.pdf.nvvp` — the glue: render an
  :class:`~repro.profiler.report.NVVPReport` to PDF and extract
  performance issues back out of any such PDF.
"""

from repro.pdf.writer import PDFWriter, text_to_pdf
from repro.pdf.reader import PDFReader, extract_text
from repro.pdf.nvvp import report_to_pdf, issues_from_pdf

__all__ = [
    "PDFWriter",
    "text_to_pdf",
    "PDFReader",
    "extract_text",
    "report_to_pdf",
    "issues_from_pdf",
]
