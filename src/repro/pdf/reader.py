"""Minimal PDF text extractor.

Scope: text-based PDFs in the style vendor tools export — content
streams (optionally FlateDecode-compressed) that draw text with the
``Tj`` / ``TJ`` / ``'`` operators.  The extractor

1. scans the file for ``N 0 obj ... endobj`` objects (robust to
   broken cross-reference tables — files are scanned, not trusted);
2. inflates streams whose dictionary declares ``/FlateDecode``;
3. tokenizes each content stream and interprets the text operators,
   emitting a newline on ``T*``, ``Td``/``TD`` with a negative y, and
   the ``'`` (move-and-show) operator;
4. decodes literal strings (with ``\\``-escapes and octal codes) and
   hex strings.

Good enough to round-trip :mod:`repro.pdf.writer` output and typical
report exports; images, encodings beyond Latin-1, and encrypted files
are out of scope.
"""

from __future__ import annotations

import re
import zlib

_OBJ_RE = re.compile(rb"(\d+)\s+(\d+)\s+obj(.*?)endobj", re.DOTALL)
_STREAM_RE = re.compile(rb"stream\r?\n(.*?)\r?\nendstream", re.DOTALL)
_STREAM_START_RE = re.compile(rb"stream\r?\n")
_LENGTH_RE = re.compile(rb"/Length\s+(\d+)")


class PDFReader:
    """Extract text from PDF bytes."""

    def __init__(self, data: bytes) -> None:
        if not data.startswith(b"%PDF"):
            raise ValueError("not a PDF file (missing %PDF header)")
        self.data = data

    @classmethod
    def from_file(cls, path: str) -> "PDFReader":
        with open(path, "rb") as handle:
            return cls(handle.read())

    # -- public API --------------------------------------------------------

    def extract_text(self) -> str:
        """All text drawn by the document's content streams."""
        chunks: list[str] = []
        for stream in self._content_streams():
            text = _interpret_content(stream)
            if text:
                chunks.append(text)
        return "\n".join(chunks)

    # -- object layer ---------------------------------------------------------

    def _content_streams(self) -> list[bytes]:
        streams: list[bytes] = []
        for match in _OBJ_RE.finditer(self.data):
            body = match.group(3)
            start_match = _STREAM_START_RE.search(body)
            if start_match is None:
                continue
            header = body[: start_match.start()]
            # prefer the declared /Length: binary stream data may end
            # in \r or contain 'endstream'-lookalike bytes that defeat
            # a delimiter regex
            length_match = _LENGTH_RE.search(header)
            if length_match is not None:
                start = start_match.end()
                raw = body[start: start + int(length_match.group(1))]
            else:
                stream_match = _STREAM_RE.search(body)
                if stream_match is None:
                    continue
                raw = stream_match.group(1)
            if b"/FlateDecode" in header:
                try:
                    raw = zlib.decompress(raw)
                except zlib.error:
                    continue  # not a content stream we can read
            # only keep streams that look like text content
            if b"BT" in raw and (b"Tj" in raw or b"TJ" in raw
                                 or b"'" in raw):
                streams.append(raw)
        return streams


# -- content-stream interpretation ----------------------------------------

_TOKEN_RE = re.compile(
    rb"""
      \((?:[^()\\]|\\.)*\)          # literal string (with escapes)
    | <[0-9A-Fa-f\s]*>              # hex string
    | \[|\]
    | /[^\s/\[\]()<>]*              # name
    | [-+]?\d*\.?\d+                # number
    | [A-Za-z'"*]+                  # operator
    """,
    re.VERBOSE,
)


def _decode_literal(raw: bytes) -> str:
    """Decode a PDF literal string body (without the parentheses)."""
    out: list[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i:i + 1]
        if ch == b"\\" and i + 1 < len(raw):
            nxt = raw[i + 1:i + 2]
            if nxt in b"nrtbf":
                out.append({"n": "\n", "r": "\r", "t": "\t",
                            "b": "\b", "f": "\f"}[nxt.decode()])
                i += 2
                continue
            if nxt.isdigit():
                octal = raw[i + 1:i + 4]
                digits = bytes(c for c in octal if chr(c).isdigit())
                out.append(chr(int(digits[:3], 8)))
                i += 1 + len(digits[:3])
                continue
            out.append(nxt.decode("latin-1"))
            i += 2
            continue
        out.append(ch.decode("latin-1"))
        i += 1
    return "".join(out)


def _decode_hex(raw: bytes) -> str:
    digits = re.sub(rb"\s", b"", raw)
    if len(digits) % 2:
        digits += b"0"
    return bytes.fromhex(digits.decode("ascii")).decode("latin-1")


def _interpret_content(stream: bytes) -> str:
    """Run the text operators of one content stream."""
    lines: list[str] = []
    current: list[str] = []
    operand_strings: list[str] = []
    numbers: list[float] = []
    in_array = False

    def end_line() -> None:
        lines.append("".join(current))
        current.clear()

    for match in _TOKEN_RE.finditer(stream):
        token = match.group(0)
        if token.startswith(b"("):
            operand_strings.append(_decode_literal(token[1:-1]))
        elif token.startswith(b"<"):
            operand_strings.append(_decode_hex(token[1:-1]))
        elif token == b"[":
            in_array = True
        elif token == b"]":
            in_array = False
        elif token.startswith(b"/"):
            continue
        elif re.fullmatch(rb"[-+]?\d*\.?\d+", token):
            numbers.append(float(token))
        else:
            operator = token.decode("latin-1")
            if operator == "Tj":
                if operand_strings:
                    current.append(operand_strings[-1])
            elif operator == "TJ":
                current.append("".join(operand_strings))
            elif operator == "'":
                end_line()
                if operand_strings:
                    current.append(operand_strings[-1])
            elif operator == '"':
                end_line()
                if operand_strings:
                    current.append(operand_strings[-1])
            elif operator == "T*":
                end_line()
            elif operator in ("Td", "TD"):
                if len(numbers) >= 2 and numbers[-1] < 0:
                    end_line()
            elif operator == "ET":
                if current:
                    end_line()
            operand_strings = []
            numbers = []
            if not in_array:
                continue
    if current:
        end_line()
    return "\n".join(lines)


def extract_text(data: bytes) -> str:
    """Extract text from PDF *data* bytes."""
    return PDFReader(data).extract_text()
