"""NVVP report <-> PDF glue.

Implements the paper's upload path end to end: the profiler report is
rendered to a PDF (what NVVP exports), and the advising tool extracts
the performance issues back out of the PDF before forming queries.
"""

from __future__ import annotations

from repro.pdf.reader import extract_text
from repro.pdf.writer import text_to_pdf
from repro.profiler.parser import NVVPReportParser
from repro.profiler.report import NVVPReport, PerformanceIssue


def report_to_pdf(report: NVVPReport, compress: bool = True) -> bytes:
    """Render *report* as a PDF file (bytes)."""
    return text_to_pdf(report.to_text(), compress=compress)


def issues_from_pdf(data: bytes) -> list[PerformanceIssue]:
    """Extract the performance issues from an NVVP report PDF."""
    text = extract_text(data)
    return NVVPReportParser().extract_issues(text)


def queries_from_pdf(data: bytes) -> list[str]:
    """Extract retrieval queries (title + description) from a PDF."""
    return [issue.query_text() for issue in issues_from_pdf(data)]
