"""The shared NLP annotation IR.

Egeria's layers (keyword → dependency parse → SRL, paper §3 / Table 1)
used to be recomputed by every consumer: Stage I built throwaway
per-sentence analyses, Stage II re-tokenized the same sentences for
TF-IDF, and persistence stored only raw text.  This module defines the
one artifact every consumer shares instead:

* :class:`SentenceAnnotations` — the per-sentence record holding each
  NLP layer (tokens, stems, normalized retrieval terms, dependency
  graph, SRL frames).  Layers are filled in lazily by an
  :class:`~repro.pipeline.stages.AnnotationPipeline` and never
  recomputed once present.
* :class:`DocumentAnnotations` — the per-document artifact: sentence
  annotations in document order, index-aligned with
  ``document.sentences``.  Stage I produces it, Stage II consumes it,
  and persistence v2 embeds its lexical layers.

Only the *lexical* layers (tokens/stems/terms) serialize — they are
what Stage II needs to skip tokenization entirely; parse trees and SRL
frames stay in-memory (cheap to keep, expensive to ship).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:   # type-only: keeps the IR importable without the
    # parser/SRL stacks loaded
    from repro.parsing.graph import DependencyGraph
    from repro.srl.labeler import Frame

#: every annotation layer, shallow to deep
LAYERS = ("tokens", "stems", "terms", "graph", "frames")

#: the layers that serialize (JSON-safe lists of strings)
LEXICAL_LAYERS = ("tokens", "stems", "terms")


@dataclass
class SentenceAnnotations:
    """All computed NLP layers of one sentence.

    ``None`` means "not computed yet" — an empty list is a computed
    layer that happened to be empty.  Instances are append-only: a
    layer is filled at most once, so they are safe to share between a
    store, multiple analyses, and multiple documents.
    """

    text: str
    tokens: list[str] | None = None
    stems: list[str] | None = None
    terms: list[str] | None = None
    graph: "DependencyGraph | None" = None
    frames: "list[Frame] | None" = None

    def get(self, layer: str):
        """The value of *layer* (``None`` if not computed)."""
        if layer not in LAYERS:
            raise KeyError(f"unknown annotation layer {layer!r}")
        return getattr(self, layer)

    def set(self, layer: str, value) -> None:
        if layer not in LAYERS:
            raise KeyError(f"unknown annotation layer {layer!r}")
        setattr(self, layer, value)

    def has(self, layer: str) -> bool:
        return self.get(layer) is not None

    @property
    def computed_layers(self) -> tuple[str, ...]:
        """Names of the layers already present, shallow to deep."""
        return tuple(layer for layer in LAYERS if self.has(layer))

    # -- (de)serialization (lexical layers only) ------------------------

    def lexical_payload(self) -> dict:
        """JSON/pickle-safe dict of the computed lexical layers.

        This is what multiprocessing workers ship back to the parent
        and what persistence v2 embeds — deliberately free of parse
        trees and frames.
        """
        return {
            layer: list(value)
            for layer in LEXICAL_LAYERS
            if (value := self.get(layer)) is not None
        }

    @classmethod
    def from_lexical(cls, text: str, payload: dict | None
                     ) -> "SentenceAnnotations":
        """Rebuild from :meth:`lexical_payload` output."""
        payload = payload or {}
        return cls(
            text=text,
            tokens=_str_list(payload.get("tokens")),
            stems=_str_list(payload.get("stems")),
            terms=_str_list(payload.get("terms")),
        )


def _str_list(value) -> list[str] | None:
    if value is None:
        return None
    return [str(item) for item in value]


@dataclass
class DocumentAnnotations:
    """Per-sentence annotations in document order.

    Index-aligned with ``document.sentences`` after ``reindex()`` —
    ``annotations[i]`` annotates the sentence whose global index is
    ``i``.  ``extend`` keeps the alignment across
    :meth:`repro.core.advisor.AdvisingTool.extend` merges, which append
    the new document's sentences after the existing ones.
    """

    sentences: list[SentenceAnnotations] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sentences)

    def __iter__(self) -> Iterator[SentenceAnnotations]:
        return iter(self.sentences)

    def __getitem__(self, index: int) -> SentenceAnnotations:
        return self.sentences[index]

    def terms_for(self, index: int) -> list[str] | None:
        """Normalized retrieval terms of sentence *index* (or ``None``
        when out of range / not computed — callers fall back to
        normalizing the raw text)."""
        if not 0 <= index < len(self.sentences):
            return None
        return self.sentences[index].terms

    def extend(self, other: "DocumentAnnotations") -> None:
        """Append *other*'s sentences (a document merged after ours)."""
        self.sentences.extend(other.sentences)

    def copy(self) -> "DocumentAnnotations":
        """A shallow copy whose sentence *list* is independent.

        ``AdvisingTool.extend`` appends onto the copy so the pre-swap
        index keeps an artifact frozen at its own length; the
        per-sentence entries are shared (they are immutable as far as
        the query path is concerned).
        """
        return DocumentAnnotations(sentences=list(self.sentences))

    @property
    def complete_terms(self) -> bool:
        """True when every sentence has its terms layer — the condition
        for Stage II to run with zero tokenizer/stemmer calls."""
        return all(ann.terms is not None for ann in self.sentences)

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> dict:
        """JSON view of the lexical layers (persistence v2 payload)."""
        return {
            "sentences": [ann.lexical_payload() for ann in self.sentences],
        }

    @classmethod
    def from_dict(cls, data: dict, texts: Sequence[str]
                  ) -> "DocumentAnnotations":
        """Rebuild against *texts* (the document's sentences in order).

        Raises :class:`ValueError` on a length mismatch — a file whose
        annotations do not align with its document is corrupt.
        """
        payloads = data.get("sentences", [])
        if len(payloads) != len(texts):
            raise ValueError(
                f"annotation count {len(payloads)} does not match "
                f"document sentence count {len(texts)}")
        return cls(sentences=[
            SentenceAnnotations.from_lexical(text, payload)
            for text, payload in zip(texts, payloads)
        ])
