"""One-pass annotation pipeline: the shared NLP IR and artifact store.

The package spans all three consumers of Egeria's NLP layers:

* Stage I classifies sentences over
  :class:`~repro.pipeline.annotations.SentenceAnnotations` records
  produced by an :class:`~repro.pipeline.stages.AnnotationPipeline`;
* Stage II builds its TF-IDF index from the
  :class:`~repro.pipeline.annotations.DocumentAnnotations` artifact
  (zero re-tokenization);
* persistence v2 embeds the lexical layers so a loaded advisor
  warm-starts without any NLP at all.

The :class:`~repro.pipeline.store.AnalysisStore` de-duplicates work
across builds, ``extend()`` calls and multi-document merges by content
hash.
"""

from repro.pipeline.annotations import (
    LAYERS,
    LEXICAL_LAYERS,
    DocumentAnnotations,
    SentenceAnnotations,
)
from repro.pipeline.layers import (
    SELECTOR_LAYER_COST,
    SELECTOR_LAYER_NEEDS,
    LayerMask,
    selector_cost,
    selector_needs,
)
from repro.pipeline.stages import (
    AnnotationPipeline,
    LayerStats,
    ObservedStage,
    ParseStage,
    SrlStage,
    Stage,
    StemStage,
    TermsStage,
    TokenizeStage,
    default_stages,
)
from repro.pipeline.store import AnalysisStore

__all__ = [
    "LAYERS",
    "LEXICAL_LAYERS",
    "SentenceAnnotations",
    "DocumentAnnotations",
    "LayerMask",
    "SELECTOR_LAYER_COST",
    "SELECTOR_LAYER_NEEDS",
    "selector_cost",
    "selector_needs",
    "Stage",
    "TokenizeStage",
    "StemStage",
    "TermsStage",
    "ParseStage",
    "SrlStage",
    "ObservedStage",
    "LayerStats",
    "default_stages",
    "AnnotationPipeline",
    "AnalysisStore",
]
