"""Layer masks — the demand-driven Stage I contract.

The paper's three NLP layers (keyword matching, dependency parsing,
SRL; §3.1) map onto five annotation layers (``tokens``/``stems``/
``terms``/``graph``/``frames``).  A :class:`LayerMask` is a tiny
immutable bitset over those layers: it records *which layers a
consumer actually touched*, so the recognizer can prove statements
like "this sentence was decided with nothing deeper than stems" and
workers can ship exactly the layers they computed.

The module also centralizes the cost model the selector scheduler
uses: each selector declares the NLP layer it consumes (``lexical`` |
``syntax`` | ``srl``), :data:`SELECTOR_LAYER_COST` orders those
cheapest first, and :data:`SELECTOR_LAYER_NEEDS` maps each to the
annotation layers it materializes.  Dependencies between the NLP
layers are *not* a straight chain: the dependency parse consumes raw
tokens, not stems, so a failed stemmer still leaves every syntactic
selector runnable (the degradation ladder relies on this).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.pipeline.annotations import LAYERS

_BITS = {layer: 1 << index for index, layer in enumerate(LAYERS)}

#: cascade cost of each selector-facing NLP layer, cheapest first
SELECTOR_LAYER_COST = {"lexical": 0, "syntax": 1, "srl": 2}

#: annotation layers each selector-facing NLP layer materializes
SELECTOR_LAYER_NEEDS = {
    "lexical": ("tokens", "stems"),
    "syntax": ("tokens", "graph"),
    "srl": ("tokens", "graph", "frames"),
}

#: annotation layers the learned Stage I pre-filter
#: (:mod:`repro.stage1`) consumes before a skip decision — deliberately
#: the shallowest possible footprint.  A sentence the pre-filter skips
#: materializes nothing beyond this mask: no stems layer (the filter
#: stems through its own vocabulary memo), no terms, no parse, no SRL.
PREFILTER_LAYER_NEEDS = ("tokens",)


class LayerMask:
    """Immutable set of annotation layers, backed by one int.

    >>> mask = LayerMask.of("tokens", "stems")
    >>> "stems" in mask and "graph" not in mask
    True
    >>> (mask | LayerMask.of("graph")).layers
    ('tokens', 'stems', 'graph')
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0) -> None:
        self._bits = bits & (1 << len(LAYERS)) - 1

    @classmethod
    def of(cls, *layers: str) -> "LayerMask":
        bits = 0
        for layer in layers:
            try:
                bits |= _BITS[layer]
            except KeyError:
                raise KeyError(f"unknown annotation layer {layer!r}") \
                    from None
        return cls(bits)

    @classmethod
    def from_layers(cls, layers: Iterable[str]) -> "LayerMask":
        return cls.of(*layers)

    @classmethod
    def full(cls) -> "LayerMask":
        return cls((1 << len(LAYERS)) - 1)

    @classmethod
    def empty(cls) -> "LayerMask":
        return cls(0)

    @property
    def bits(self) -> int:
        return self._bits

    @property
    def layers(self) -> tuple[str, ...]:
        """Member layers, shallow to deep."""
        return tuple(layer for layer in LAYERS
                     if self._bits & _BITS[layer])

    def __contains__(self, layer: str) -> bool:
        bit = _BITS.get(layer)
        if bit is None:
            raise KeyError(f"unknown annotation layer {layer!r}")
        return bool(self._bits & bit)

    def __iter__(self) -> Iterator[str]:
        return iter(self.layers)

    def __len__(self) -> int:
        return bin(self._bits).count("1")

    def __bool__(self) -> bool:
        return bool(self._bits)

    def __or__(self, other: "LayerMask") -> "LayerMask":
        return LayerMask(self._bits | other._bits)

    def __and__(self, other: "LayerMask") -> "LayerMask":
        return LayerMask(self._bits & other._bits)

    def __sub__(self, other: "LayerMask") -> "LayerMask":
        return LayerMask(self._bits & ~other._bits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LayerMask) and other._bits == self._bits

    def __hash__(self) -> int:
        return hash(("LayerMask", self._bits))

    def __repr__(self) -> str:
        return f"LayerMask({', '.join(self.layers)})"

    def covers(self, other: "LayerMask") -> bool:
        """True when every layer of *other* is in this mask."""
        return (other._bits & ~self._bits) == 0


def selector_cost(layer: str) -> int:
    """Scheduler cost of a selector-facing NLP layer (unknown layers
    sort with syntax, the historical default)."""
    return SELECTOR_LAYER_COST.get(layer, SELECTOR_LAYER_COST["syntax"])


def selector_needs(layer: str) -> tuple[str, ...]:
    """Annotation layers a selector on *layer* materializes."""
    return SELECTOR_LAYER_NEEDS.get(layer,
                                    SELECTOR_LAYER_NEEDS["syntax"])


def prefilter_mask() -> LayerMask:
    """The deepest mask a pre-filter-skipped sentence may carry.

    The recall-safety property test asserts every skipped sentence's
    materialized layers are covered by this mask — the layer-level
    statement of "short-circuited sentences never touch the NLP
    stack".
    """
    return LayerMask.of(*PREFILTER_LAYER_NEEDS)
