"""Content-addressed cache of sentence annotations.

Guide corpora repeat boilerplate heavily (~35% duplicate sentences in
the bundled guides), advisors are rebuilt and extended with documents
that mostly overlap their predecessors, and multi-document merges share
whole chapters.  The :class:`AnalysisStore` makes all of that cheap:
annotations are keyed by a content hash of the sentence text, held in
an in-memory LRU (full records, parse trees included) and optionally
mirrored to an on-disk cache directory (lexical layers only, JSON) that
survives process restarts.

Hit/miss counters feed ``AdvisingTool.health()`` and ``/healthz`` so
operators can see whether a deployment is actually reusing work.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict

from repro.pipeline.annotations import LAYERS, SentenceAnnotations

#: on-disk cache entry format (bumped if the payload shape changes)
DISK_FORMAT = 1


class AnalysisStore:
    """LRU annotation cache keyed by sentence-content hash.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity; the oldest entry is evicted first.
    cache_dir:
        Optional directory for the persistent tier.  Created on first
        write; unreadable or corrupt entries are treated as misses
        (never raised), so a damaged cache can only cost time.
    """

    def __init__(self, max_entries: int = 100_000,
                 cache_dir: str | None = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        # egeria: guarded-by[self._lock]
        self._entries: OrderedDict[str, SentenceAnnotations] = OrderedDict()
        self.hits = 0         # egeria: guarded-by[self._lock]
        self.misses = 0       # egeria: guarded-by[self._lock]
        self.disk_hits = 0    # egeria: guarded-by[self._lock]
        self.evictions = 0    # egeria: guarded-by[self._lock]
        self.disk_writes = 0  # egeria: guarded-by[self._lock]
        self.upgrades = 0     # egeria: guarded-by[self._lock]

    @staticmethod
    def content_key(text: str) -> str:
        """Stable content hash of a sentence (the cache key)."""
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- lookup ---------------------------------------------------------

    def get(self, text: str) -> SentenceAnnotations | None:
        """The cached annotations for *text*, or ``None`` (a miss)."""
        key = self.content_key(text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        entry = self._disk_get(key, text)
        if entry is not None:
            with self._lock:
                self.hits += 1
                self.disk_hits += 1
                self._insert_locked(key, entry)
            return entry
        with self._lock:
            self.misses += 1
        return None

    def put(self, text: str, annotations: SentenceAnnotations) -> None:
        """Cache *annotations* under the content key of *text*.

        Entries are keyed per layer: putting a record for a text the
        store already holds *merges* — any layer the incoming record
        has and the stored one lacks upgrades the stored record in
        place (the stored object keeps its identity, so every analysis
        sharing it sees the new layers), and layers already present are
        never overwritten.  A partial record therefore converges layer
        by layer toward a full one instead of being recomputed or
        clobbered.
        """
        key = self.content_key(text)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing is not annotations:
                upgraded = False
                for layer in LAYERS:
                    if existing.get(layer) is None \
                            and annotations.get(layer) is not None:
                        existing.set(layer, annotations.get(layer))
                        upgraded = True
                if upgraded:
                    self.upgrades += 1
                self._entries.move_to_end(key)
                annotations = existing
            else:
                self._insert_locked(key, annotations)
        self._disk_put(key, annotations)

    def _insert_locked(self, key: str,
                       annotations: SentenceAnnotations) -> None:
        # caller holds self._lock (`_locked` suffix convention,
        # DESIGN.md §13)
        self._entries[key] = annotations
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, text: str) -> bool:
        with self._lock:
            return self.content_key(text) in self._entries

    # -- the persistent tier --------------------------------------------

    def _disk_path(self, key: str) -> str | None:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def _disk_get(self, key: str,
                  text: str) -> SentenceAnnotations | None:
        path = self._disk_path(key)
        if path is None:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("format") != DISK_FORMAT:
            return None
        return SentenceAnnotations.from_lexical(
            text, data.get("layers") or {})

    def _disk_put(self, key: str,
                  annotations: SentenceAnnotations) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        payload = annotations.lexical_payload()
        if not payload:
            return          # nothing lexical computed yet — not worth a file
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = None
        if data is not None and data.get("format") == DISK_FORMAT:
            # content-addressed, keyed per layer: merge any layer the
            # file lacks; rewrite only when the entry actually grew.
            stored = data.get("layers") or {}
            missing = {layer: value for layer, value in payload.items()
                       if stored.get(layer) is None}
            if not missing:
                return
            payload = {**stored, **missing}
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"format": DISK_FORMAT, "layers": payload},
                          handle, ensure_ascii=False)
            os.replace(tmp, path)
        except OSError:
            return          # cache write failures must never break a build
        with self._lock:
            self.disk_writes += 1

    # -- diagnostics ----------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot (the ``/healthz`` ``annotation_store`` block)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "disk_hits": self.disk_hits,
                "disk_writes": self.disk_writes,
                "evictions": self.evictions,
                "upgrades": self.upgrades,
                "cache_dir": self.cache_dir,
            }

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        with self._lock:
            self.hits = self.misses = 0
            self.disk_hits = self.disk_writes = self.evictions = 0
            self.upgrades = 0
