"""Composable annotation stages — the one-pass NLP pipeline.

Each :class:`Stage` declares what it ``requires`` and what layer it
``provides``; :class:`AnnotationPipeline` resolves the dependencies and
runs only the stages a consumer actually needs, memoizing every result
on the :class:`~repro.pipeline.annotations.SentenceAnnotations` record.
This preserves the property the selector cascade depends on (paper
§3.1): a sentence accepted by the keyword selector never pays for
parsing, because ``ensure(ann, "stems")`` runs tokenize+stem and
nothing deeper.

Every stage keeps its historical fault point (``analysis.tokenize`` /
``analysis.stem`` / ``analysis.parse`` / ``analysis.srl``), so chaos
plans written against the pre-pipeline layout keep working; the terms
stage adds ``analysis.terms``.  A stage failure propagates to the
caller exactly as the old lazy properties did — the degradation ladder
in :mod:`repro.resilience.degrade` turns it into a per-sentence,
per-layer fallback.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable

from repro.pipeline.annotations import SentenceAnnotations
from repro.pipeline.store import AnalysisStore
from repro.resilience.faults import fault_point


@runtime_checkable
class Stage(Protocol):
    """One annotation pass: consumes ``requires``, fills ``provides``."""

    #: short identifier (diagnostics, ``describe()``)
    name: str
    #: layers that must be present before :meth:`run`
    requires: tuple[str, ...]
    #: the single layer this stage computes
    provides: str

    def run(self, annotations: SentenceAnnotations):
        """Compute this stage's layer from the prerequisite layers."""
        ...


class TokenizeStage:
    """Word tokenization (lexical layer)."""

    name = "tokenize"
    requires: tuple[str, ...] = ()
    provides = "tokens"

    def __init__(self, tokenizer=None) -> None:
        if tokenizer is None:
            from repro.textproc.word_tokenizer import WordTokenizer

            tokenizer = WordTokenizer()
        self.tokenizer = tokenizer

    def run(self, annotations: SentenceAnnotations) -> list[str]:
        fault_point("analysis.tokenize")
        return self.tokenizer.tokenize(annotations.text)


class StemStage:
    """Porter stems of the raw tokens (lexical layer, Stage I view)."""

    name = "stem"
    requires = ("tokens",)
    provides = "stems"

    def __init__(self, stemmer=None) -> None:
        if stemmer is None:
            from repro.textproc.porter import PorterStemmer

            stemmer = PorterStemmer()
        self.stemmer = stemmer

    def run(self, annotations: SentenceAnnotations) -> list[str]:
        fault_point("analysis.stem")
        stem = self.stemmer.stem
        return [stem(token) for token in annotations.tokens]


class TermsStage:
    """Normalized retrieval terms (lexical layer, Stage II view).

    Runs the full normalization pipeline (lowercase, drop punctuation
    and stopwords, stem) over the already-computed tokens — by
    construction identical to ``NormalizationPipeline()(text)``, which
    is what makes annotation-fed retrieval score-identical to the old
    re-tokenizing path.

    Demand-driven fast path: with the default stemmer and normalizer,
    the terms of a sentence whose ``stems`` layer is already present
    are *derived* rather than recomputed — the normalizer's steps are
    punct-drop, stopword-drop (both on the raw token), lowercase, stem,
    and ``PorterStemmer.stem`` lowercases its input itself, so the
    surviving tokens' terms are exactly their already-computed stems.
    This removes the second stemming pass Stage I used to pay on every
    sentence (the stems layer for keyword matching, then a full re-stem
    for retrieval terms).  ``derive_from_stems`` is only enabled by
    :func:`default_stages` when both components are the defaults; any
    custom stemmer or normalizer keeps the reference path.
    """

    name = "terms"
    requires = ("tokens",)
    provides = "terms"

    def __init__(self, normalizer=None,
                 derive_from_stems: bool = False) -> None:
        if normalizer is None:
            from repro.textproc.normalize import NormalizationPipeline

            normalizer = NormalizationPipeline()
        self.normalizer = normalizer
        self.derive_from_stems = derive_from_stems

    def run(self, annotations: SentenceAnnotations) -> list[str]:
        fault_point("analysis.terms")
        stems = annotations.stems
        if self.derive_from_stems and stems is not None:
            from repro.textproc.normalize import _is_punct
            from repro.textproc.stopwords import is_stopword

            return [stemmed
                    for token, stemmed in zip(annotations.tokens, stems)
                    if stemmed and not _is_punct(token)
                    and not is_stopword(token)]
        return self.normalizer.normalize_tokens(annotations.tokens)


class ParseStage:
    """Dependency parsing (syntax layer)."""

    name = "parse"
    requires = ("tokens",)
    provides = "graph"

    def __init__(self, parser=None) -> None:
        if parser is None:
            from repro.parsing.parser import DependencyParser

            parser = DependencyParser()
        self.parser = parser

    def run(self, annotations: SentenceAnnotations):
        fault_point("analysis.parse")
        return self.parser.parse(annotations.tokens)


class SrlStage:
    """Semantic role labeling (SRL layer)."""

    name = "srl"
    requires = ("graph",)
    provides = "frames"

    def __init__(self, labeler=None) -> None:
        if labeler is None:
            from repro.srl.labeler import SemanticRoleLabeler

            labeler = SemanticRoleLabeler()
        self.labeler = labeler

    def run(self, annotations: SentenceAnnotations):
        fault_point("analysis.srl")
        return self.labeler.label(annotations.graph)


def default_stages(tokenizer=None, stemmer=None, normalizer=None,
                   parser=None, labeler=None) -> list[Stage]:
    """The five standard stages: tokenize → stem/terms → parse → SRL.

    With the default stemmer *and* normalizer the terms stage derives
    its output from an already-present stems layer (see
    :class:`TermsStage`); any custom component disables the shortcut
    because the two passes are no longer guaranteed to agree.
    """
    return [
        TokenizeStage(tokenizer),
        StemStage(stemmer),
        TermsStage(normalizer,
                   derive_from_stems=stemmer is None and normalizer is None),
        ParseStage(parser),
        SrlStage(labeler),
    ]


class LayerStats:
    """Thread-safe per-layer materialization counters.

    One instance is shared by every :class:`ObservedStage` of an
    observed pipeline; ``snapshot()`` reports, per annotation layer,
    how many times its stage actually ran, failed, and how long it
    took — the evidence behind "the lazy cascade parsed only 18% of
    the sentences".
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.runs: dict[str, int] = {}      # egeria: guarded-by[self._lock]
        self.failures: dict[str, int] = {}  # egeria: guarded-by[self._lock]
        self.seconds: dict[str, float] = {}  # egeria: guarded-by[self._lock]

    def record(self, layer: str, seconds: float,
               failed: bool = False) -> None:
        with self._lock:
            self.runs[layer] = self.runs.get(layer, 0) + 1
            self.seconds[layer] = self.seconds.get(layer, 0.0) + seconds
            if failed:
                self.failures[layer] = self.failures.get(layer, 0) + 1

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return {
                layer: {
                    "runs": self.runs.get(layer, 0),
                    "failures": self.failures.get(layer, 0),
                    "seconds": self.seconds.get(layer, 0.0),
                }
                for layer in sorted(self.runs)
            }


class ObservedStage:
    """Per-layer lazy stage wrapper: delegates to the wrapped stage
    and records the layer-level outcome on a shared
    :class:`LayerStats`.

    The wrapped stage's own fault point fires at materialization time
    (inside the delegated ``run``), so the wrapper never needs — and
    must not add — a second hook for the same layer.
    """

    # mirrored from the wrapped stage per instance; the class-level
    # defaults exist so the wrapper satisfies the Stage protocol
    name = "observed"
    requires: tuple[str, ...] = ()
    provides = ""

    def __init__(self, inner: Stage, stats: LayerStats) -> None:
        self.inner = inner
        self.name = inner.name
        self.requires = inner.requires
        self.provides = inner.provides
        self._stats = stats

    def __getattr__(self, attribute: str):
        # component views (tokenizer/stemmer/...) pass through; the
        # "inner" guard keeps unpickling from recursing before state
        # is restored
        if attribute == "inner":
            raise AttributeError(attribute)
        return getattr(self.inner, attribute)

    def run(self, annotations: SentenceAnnotations):
        started = time.perf_counter()
        try:
            value = self.inner.run(annotations)
        except Exception:
            self._stats.record(self.provides,
                               time.perf_counter() - started, failed=True)
            raise
        self._stats.record(self.provides, time.perf_counter() - started)
        return value


class AnnotationPipeline:
    """Dependency-resolved execution of annotation stages.

    The pipeline is demand-driven: :meth:`ensure` computes a single
    layer (and its prerequisites) on one sentence; :meth:`annotate`
    produces a whole :class:`SentenceAnnotations` record, consulting
    the optional :class:`~repro.pipeline.store.AnalysisStore` first so
    a sentence ever seen before is never re-analyzed.
    """

    def __init__(self, stages: list[Stage] | None = None,
                 store: AnalysisStore | None = None) -> None:
        self.stages: list[Stage] = (list(stages) if stages is not None
                                    else default_stages())
        self.store = store
        self._providers: dict[str, Stage] = {}
        for stage in self.stages:
            if stage.provides in self._providers:
                raise ValueError(
                    f"duplicate stage for layer {stage.provides!r}")
            self._providers[stage.provides] = stage
        for stage in self.stages:
            missing = [req for req in stage.requires
                       if req not in self._providers]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} requires unprovided "
                    f"layers {missing}")

    # -- component access (compat with the pre-pipeline analyzer) -------

    def stage_for(self, layer: str) -> Stage | None:
        return self._providers.get(layer)

    @property
    def tokenizer(self):
        return getattr(self.stage_for("tokens"), "tokenizer", None)

    @property
    def stemmer(self):
        return getattr(self.stage_for("stems"), "stemmer", None)

    @property
    def normalizer(self):
        return getattr(self.stage_for("terms"), "normalizer", None)

    @property
    def parser(self):
        return getattr(self.stage_for("graph"), "parser", None)

    @property
    def labeler(self):
        return getattr(self.stage_for("frames"), "labeler", None)

    # -- execution ------------------------------------------------------

    def ensure(self, annotations: SentenceAnnotations, layer: str):
        """Compute *layer* (and prerequisites) on *annotations*.

        Memoized: already-present layers are returned as-is, so a
        store-warmed record costs nothing.  A stage failure (including
        injected faults) propagates to the caller; previously computed
        layers stay valid.
        """
        existing = annotations.get(layer)
        if existing is not None:
            return existing
        stage = self._providers.get(layer)
        if stage is None:
            raise KeyError(f"no stage provides layer {layer!r}")
        for requirement in stage.requires:
            self.ensure(annotations, requirement)
        value = stage.run(annotations)
        annotations.set(layer, value)
        return value

    def fresh(self, text: str) -> SentenceAnnotations:
        """A new empty record (store consulted, never written)."""
        if self.store is not None:
            cached = self.store.get(text)
            if cached is not None:
                return cached
        return SentenceAnnotations(text=text)

    def annotate(self, text: str,
                 layers: tuple[str, ...] = ("tokens", "stems", "terms"),
                 ) -> SentenceAnnotations:
        """Annotate *text* with *layers*, reusing and feeding the store."""
        annotations = self.fresh(text)
        for layer in layers:
            self.ensure(annotations, layer)
        if self.store is not None:
            self.store.put(text, annotations)
        return annotations

    def observed(self, stats: LayerStats | None = None
                 ) -> tuple["AnnotationPipeline", LayerStats]:
        """A pipeline whose stages report into a shared
        :class:`LayerStats` — same components, same fault points, plus
        per-layer materialization accounting."""
        stats = stats if stats is not None else LayerStats()
        wrapped = [stage if isinstance(stage, ObservedStage)
                   else ObservedStage(stage, stats)
                   for stage in self.stages]
        return AnnotationPipeline(wrapped, store=self.store), stats

    def describe(self) -> list[dict]:
        """Stage graph as data (diagnostics / DESIGN.md §7 example)."""
        return [
            {"name": stage.name, "requires": list(stage.requires),
             "provides": stage.provides}
            for stage in self.stages
        ]
