"""Graceful degradation of the selector cascade.

The five selectors consume three NLP layers (paper §3.1): the keyword
selector needs only tokens/stems (*lexical*), the three syntactic
selectors need the dependency parse (*syntax*), and the purpose
selector needs semantic role labeling (*srl*).  When a layer fails on
a sentence — a crash in the parser, an injected fault, a pathological
input — the ladder falls back to the selectors whose layers still
work:

    full (keyword+syntax+srl)  →  keyword+syntax  →  keyword  →  quarantine

so a failing NLP layer yields a best-effort classification tagged with
:class:`DegradationEvent` records instead of an exception.  A sentence
is *quarantined* only when every selector fails — i.e. not even the
lexical layer could run.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:   # type-only: keeps repro.resilience importable from
    # inside repro.core without a circular import
    from repro.core.analysis import SentenceAnalysis
    from repro.core.selectors import Selector

#: NLP layer order, shallow to deep.
LAYERS = ("lexical", "syntax", "srl")

#: human-readable rung names, most to least capable.
LADDER_RUNGS = ("keyword+syntax+srl", "keyword+syntax", "keyword", "none")

_LAYER_LABEL = {"lexical": "keyword", "syntax": "syntax", "srl": "srl"}


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded fallback: which layer failed, where, and why.

    Instances are small, frozen and picklable so they travel from
    multiprocessing workers back to the parent and out through the web
    API's JSON views.
    """

    layer: str                    # "lexical" | "syntax" | "srl" | other
    point: str                    # e.g. "selector.purpose", "recognizer.dispatch"
    error: str                    # repr of the underlying exception
    sentence_index: int | None = None

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "point": self.point,
            "error": self.error,
            "sentence_index": self.sentence_index,
        }


@dataclass(frozen=True)
class DegradedClassification:
    """Outcome of classifying one sentence through the ladder.

    ``matches`` is the all-selector match vector — only populated in
    full-provenance mode (``collect_matches=True``), where every
    selector is evaluated instead of short-circuiting at the first
    fire; ``None`` under the default lazy cascade.
    """

    is_advising: bool
    selector: str | None
    events: tuple[DegradationEvent, ...] = ()
    quarantined: bool = False
    error: str | None = None
    matches: tuple[tuple[str, bool], ...] | None = None
    #: the sentence was short-circuited as confidently negative by the
    #: Stage I pre-filter (:mod:`repro.stage1`) — the cascade never
    #: ran.  Downstream finalization uses it to skip the terms top-up:
    #: a skipped sentence materializes nothing beyond tokens.
    prefilter_skipped: bool = False

    @property
    def degraded(self) -> bool:
        return bool(self.events)

    @property
    def rung(self) -> str:
        """The ladder rung that produced this classification."""
        if self.quarantined:
            return "none"
        failed = {event.layer for event in self.events}
        surviving = [_LAYER_LABEL[layer] for layer in LAYERS
                     if layer not in failed]
        return "+".join(surviving) if surviving else "none"


def selector_layer(selector: "Selector") -> str:
    """The NLP layer a selector depends on (declared on the class)."""
    return getattr(selector, "layer", "syntax")


class DegradationLadder:
    """Runs a selector cascade with per-layer fallback.

    Every selector is attempted in the given order; a selector that
    raises is recorded as a :class:`DegradationEvent` for its layer and
    the cascade continues with the remaining selectors, so the deepest
    surviving rung still decides the sentence.

    Layer-level outcomes: when the analysis carries a memoized stage
    failure (see :class:`repro.core.analysis.SentenceAnalysis`), a
    selector whose NLP layer is already known to be broken is *skipped*
    — recorded exactly as if it had raised the memoized exception, but
    without re-running the dead stage.  Without this, a failed parser
    was re-executed once per syntactic selector on every sentence.
    """

    def __init__(self, selectors: Sequence["Selector"]) -> None:
        self.selectors = list(selectors)

    def classify(self, analysis: "SentenceAnalysis",
                 sentence_index: int | None = None,
                 collect_matches: bool = False,
                 ) -> DegradedClassification:
        """Classify one sentence.

        With ``collect_matches`` (full-provenance mode) every selector
        is evaluated — no short-circuit — and the resulting match
        vector is attached to the classification; ``selector`` is still
        the first firing one, so provenance agrees with the lazy
        cascade.
        """
        events: list[DegradationEvent] = []
        failed_layers: set[str] = set()
        completed = 0
        first_error: str | None = None
        fired: str | None = None
        matches: list[tuple[str, bool]] = []
        blocker_of = getattr(analysis, "selector_blocker", None)

        def record_failure(selector, error: BaseException) -> None:
            nonlocal first_error
            layer = selector_layer(selector)
            if first_error is None:
                first_error = repr(error)
            if layer not in failed_layers:
                failed_layers.add(layer)
                events.append(DegradationEvent(
                    layer=layer,
                    point=f"selector.{selector.name}",
                    error=repr(error),
                    sentence_index=sentence_index,
                ))

        for selector in self.selectors:
            if blocker_of is not None:
                blocked = blocker_of(selector_layer(selector))
                if blocked is not None:
                    record_failure(selector, blocked)
                    continue
            try:
                matched = selector.matches(analysis)
            except Exception as error:
                record_failure(selector, error)
                continue
            completed += 1
            if collect_matches:
                matches.append((selector.name, bool(matched)))
            if matched:
                if fired is None:
                    fired = selector.name
                if not collect_matches:
                    break
        if completed == 0:
            return DegradedClassification(
                is_advising=False, selector=None, events=tuple(events),
                quarantined=True, error=first_error,
                matches=tuple(matches) if collect_matches else None)
        return DegradedClassification(
            is_advising=fired is not None, selector=fired,
            events=tuple(events), quarantined=False, error=None,
            matches=tuple(matches) if collect_matches else None)


def summarize_events(
    events: Sequence[DegradationEvent],
) -> dict[str, int]:
    """Per-layer event counts (the /healthz degradation counters)."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.layer] = counts.get(event.layer, 0) + 1
    return counts
