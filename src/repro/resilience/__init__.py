"""Resilience layer: fault injection, retry/deadline/breaker policies,
and graceful NLP degradation.

Deployed advising tools face failure modes the paper's evaluation never
exercises: a pathological sentence that crashes one NLP layer, a hung
or dead multiprocessing worker, an oversized upload, a slow request.
This package gives the reproduction the same fault-tolerance footing
that production HPC-support NLP systems treat as a first-class
requirement:

* :mod:`repro.resilience.faults` — a deterministic, seedable
  fault-injection harness (chaos testing for the pipeline);
* :mod:`repro.resilience.policy` — composable ``Retry``, ``Deadline``
  and ``CircuitBreaker`` primitives;
* :mod:`repro.resilience.degrade` — the selector-cascade degradation
  ladder (full keyword+syntax+SRL → keyword+syntax → keyword-only)
  plus the :class:`DegradationEvent` records carried on results.
"""

from __future__ import annotations

from repro.resilience.degrade import (
    DegradationEvent,
    DegradationLadder,
    DegradedClassification,
    LADDER_RUNGS,
    summarize_events,
)
from repro.resilience.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fault_point,
    inject,
)
from repro.resilience.policy import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    PolicyError,
    Retry,
    RetryExhausted,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "DegradationEvent",
    "DegradationLadder",
    "DegradedClassification",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "LADDER_RUNGS",
    "PolicyError",
    "Retry",
    "RetryExhausted",
    "active_injector",
    "fault_point",
    "inject",
    "summarize_events",
]
