"""Deterministic, seedable fault injection for the Egeria pipeline.

The pipeline exposes *fault points* — named hooks placed at the layer
boundaries that matter operationally (tokenization, tagging/parsing,
SRL, document loading, retrieval, worker dispatch).  In normal
operation every hook is a near-free no-op.  Under an active
:class:`FaultInjector` (installed with :func:`inject`), each hook
consults the injector, which may add latency or raise an exception
according to its :class:`FaultPlan`.

Determinism: every fault point gets its own ``random.Random`` stream
seeded from ``(plan.seed, point name)``, so whether the *k*-th check of
a given point fires does not depend on how checks of other points
interleave — the property that makes chaos runs reproducible across
worker counts and batch orders.

Well-known fault points::

    analysis.tokenize    word tokenization     (lexical layer)
    analysis.stem        stemming              (lexical layer)
    analysis.parse       dependency parsing    (syntax layer)
    analysis.srl         semantic role labeling (SRL layer)
    loader.html / loader.markdown / loader.text   document loading
    recommend            Stage II retrieval
    recognizer.dispatch  per-batch worker dispatch (simulated crash)
    snapshot.write       each chunk of an atomic persistence write
                         (kill-mid-write crash tests)
    snapshot.commit      just before the os.replace rename commit
    snapshot.load        snapshot payload read (simulated disk errors)
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass


class FaultError(RuntimeError):
    """Default exception raised by an injected fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One named fault point's failure behaviour.

    ``probability`` is evaluated per check; ``after`` skips the first N
    checks entirely (deterministic "fail later" faults); ``max_failures``
    caps how many times the fault fires (``None`` = unlimited);
    ``latency_s`` sleeps before the (possible) failure, so pure-latency
    faults use ``probability=0.0`` with a positive latency.
    """

    point: str
    probability: float = 1.0
    exception: type[BaseException] = FaultError
    latency_s: float = 0.0
    max_failures: int | None = None
    after: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")


#: exception names accepted in JSON fault plans
_EXCEPTION_NAMES: dict[str, type[BaseException]] = {
    "FaultError": FaultError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "OSError": OSError,
    "TimeoutError": TimeoutError,
    "MemoryError": MemoryError,
}


@dataclass(frozen=True)
class FaultPlan:
    """A named, seedable collection of fault specs."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = "fault-plan"

    def for_point(self, point: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.point == point)

    @property
    def points(self) -> tuple[str, ...]:
        seen: list[str] = []
        for spec in self.specs:
            if spec.point not in seen:
                seen.append(spec.point)
        return tuple(seen)

    # -- (de)serialization -------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"name", "seed", "faults"}
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        specs: list[FaultSpec] = []
        for entry in data.get("faults", []):
            bad = set(entry) - {"point", "probability", "exception",
                                "latency_ms", "max_failures", "after"}
            if bad:
                raise ValueError(f"unknown fault keys: {sorted(bad)}")
            if "point" not in entry:
                raise ValueError("every fault needs a 'point'")
            exc_name = entry.get("exception", "FaultError")
            if exc_name not in _EXCEPTION_NAMES:
                raise ValueError(
                    f"unknown exception {exc_name!r}; expected one of "
                    f"{sorted(_EXCEPTION_NAMES)}")
            specs.append(FaultSpec(
                point=str(entry["point"]),
                probability=float(entry.get("probability", 1.0)),
                exception=_EXCEPTION_NAMES[exc_name],
                latency_s=float(entry.get("latency_ms", 0)) / 1000.0,
                max_failures=(None if entry.get("max_failures") is None
                              else int(entry["max_failures"])),
                after=int(entry.get("after", 0)),
            ))
        return cls(specs=tuple(specs), seed=int(data.get("seed", 0)),
                   name=str(data.get("name", "fault-plan")))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [
                {
                    "point": s.point,
                    "probability": s.probability,
                    "exception": s.exception.__name__,
                    "latency_ms": s.latency_s * 1000.0,
                    "max_failures": s.max_failures,
                    "after": s.after,
                }
                for s in self.specs
            ],
        }


class FaultInjector:
    """Executes a :class:`FaultPlan` against named fault points."""

    def __init__(self, plan: FaultPlan,
                 sleep=time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self.checks: dict[str, int] = {}
        self.fired: dict[str, int] = {}

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}:{point}")
            self._rngs[point] = rng
        return rng

    def check(self, point: str) -> None:
        """Evaluate *point*; sleeps/raises per the plan."""
        specs = self.plan.for_point(point)
        if not specs:
            return
        with self._lock:
            count = self.checks.get(point, 0)
            self.checks[point] = count + 1
            rng = self._rng(point)
            draws = [rng.random() for _ in specs]
        for spec, draw in zip(specs, draws):
            if count < spec.after:
                continue
            if spec.latency_s:
                self._sleep(spec.latency_s)
            if spec.probability <= 0.0:
                continue
            with self._lock:
                fired = self.fired.get(point, 0)
                if spec.max_failures is not None \
                        and fired >= spec.max_failures:
                    continue
                if draw >= spec.probability:
                    continue
                self.fired[point] = fired + 1
            raise spec.exception(
                f"injected fault at {point!r} "
                f"(check #{count}, plan {self.plan.name!r})")

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-point check/fire counters (for /healthz and reports)."""
        with self._lock:
            return {
                point: {"checks": self.checks.get(point, 0),
                        "fired": self.fired.get(point, 0)}
                for point in sorted(set(self.checks) | set(self.fired))
            }


# -- the process-wide active injector --------------------------------------
#
# A module-level slot rather than a context variable: the recognizer's
# fork-based worker pool inherits it at fork time, so faults planned in
# the parent also fire inside workers.

_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The currently installed injector, if any."""
    return _ACTIVE


def fault_point(name: str) -> None:
    """Hook placed in pipeline code; no-op unless an injector is active."""
    injector = _ACTIVE
    if injector is not None:
        injector.check(name)


@contextmanager
def inject(plan_or_injector: FaultPlan | FaultInjector | None,
           ) -> Iterator[FaultInjector | None]:
    """Install an injector for the duration of the ``with`` block.

    Accepts a plan (wrapped in a fresh injector), an injector, or
    ``None`` (no-op — convenient for optional chaos paths).  Nested
    installs restore the previous injector on exit.
    """
    global _ACTIVE
    if plan_or_injector is None:
        yield None
        return
    injector = (plan_or_injector
                if isinstance(plan_or_injector, FaultInjector)
                else FaultInjector(plan_or_injector))
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def chaos_plan(srl_probability: float = 0.2,
               worker_crashes: int = 1,
               seed: int = 0) -> FaultPlan:
    """The canned chaos plan used by ``make chaos`` and the acceptance
    scenario: a fraction of SRL-layer failures plus simulated worker
    crashes on batch dispatch."""
    return FaultPlan(
        name="canned-chaos",
        seed=seed,
        specs=(
            FaultSpec(point="analysis.srl", probability=srl_probability),
            FaultSpec(point="recognizer.dispatch", probability=1.0,
                      max_failures=worker_crashes),
        ),
    )
