"""Composable resilience policies: retry, deadline, circuit breaker.

All three primitives take their clock/sleep/rng as injectable
callables so tests drive them with fake time — no real sleeping in the
test suite — and so the recognizer can share one deterministic RNG
across a chaos run.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterator


class PolicyError(RuntimeError):
    """Base class for policy-raised errors."""


class RetryExhausted(PolicyError):
    """All retry attempts failed; ``last`` is the final exception."""

    def __init__(self, message: str, last: BaseException) -> None:
        super().__init__(message)
        self.last = last


class DeadlineExceeded(PolicyError):
    """A time budget ran out."""


class CircuitOpenError(PolicyError):
    """The circuit breaker is open; the call was not attempted."""


class Retry:
    """Exponential backoff with jitter and an exception allowlist.

    ``max_attempts`` counts the first try: ``Retry(max_attempts=3)``
    runs the callable at most three times.  Delay before attempt *k*
    (k >= 1) is ``min(max_delay, base_delay * multiplier**(k-1))``
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.retry_on = retry_on
        self._sleep = sleep
        self._rng = rng or random.Random()

    def backoff(self, attempt: int) -> float:
        """Delay before retry number *attempt* (1-based), jittered."""
        raw = min(self.max_delay,
                  self.base_delay * (self.multiplier ** (attempt - 1)))
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, raw)

    def delays(self) -> Iterator[float]:
        """The jittered delay sequence (one per retry)."""
        for attempt in range(1, self.max_attempts):
            yield self.backoff(attempt)

    def call(self, fn: Callable, *args, **kwargs):
        """Run *fn*, retrying allowlisted exceptions with backoff.

        Raises :class:`RetryExhausted` (chaining the last error) when
        every attempt fails; non-allowlisted exceptions propagate
        immediately.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as error:
                last = error
                if attempt == self.max_attempts:
                    break
                self._sleep(self.backoff(attempt))
        if last is None:
            # unreachable while max_attempts >= 1 is enforced in
            # __init__; guarded with a real raise (not an assert, which
            # `python -O` strips) so a future refactor can't turn this
            # into `RetryExhausted(..., None)`
            raise PolicyError(
                f"retry loop for {fn!r} exited without running any "
                f"attempt (max_attempts={self.max_attempts})")
        raise RetryExhausted(
            f"{fn!r} failed after {self.max_attempts} attempts: {last}",
            last) from last


class Deadline:
    """A monotonic time budget shared across pipeline steps.

    Created at the start of a unit of work (one web request, one
    document build); long-running loops call :meth:`check` between
    steps.  ``budget_s=None`` means unlimited (every check passes).
    """

    def __init__(self, budget_s: float | None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError("budget_s must be positive (or None)")
        self.budget_s = budget_s
        self._clock = clock
        self._started = clock()

    @classmethod
    def from_ms(cls, budget_ms: float | None,
                clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(None if budget_ms is None else budget_ms / 1000.0,
                   clock=clock)

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            where = f" at {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded{where} "
                f"({self.elapsed():.3f}s elapsed)")


class CircuitBreaker:
    """Classic three-state breaker guarding a flaky dependency.

    CLOSED → (``failure_threshold`` consecutive failures) → OPEN →
    (``recovery_time`` elapses) → HALF_OPEN → one probe call: success
    closes the circuit, failure reopens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5,
                 recovery_time: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        if self._state == self.OPEN and \
                self._clock() - self._opened_at >= self.recovery_time:
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?"""
        return self.state != self.OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            self._trip()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._failures = 0

    def call(self, fn: Callable, *args, **kwargs):
        """Run *fn* through the breaker.

        Raises :class:`CircuitOpenError` without calling when open.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit open ({self.recovery_time:.1f}s recovery)")
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
