"""persistence-schema-sync — format v2 can't silently drop a layer.

Origin: persistence format v2 (PR 2) embeds the annotation artifact's
lexical layers so a loaded advisor performs zero tokenizer calls.  The
round-trip is spread over two modules — the layer tuples and dataclass
fields in ``repro.pipeline.annotations``, the JSON keys in
``repro.core.persistence`` — and nothing kept them aligned: adding a
layer to ``LEXICAL_LAYERS`` without teaching ``from_lexical`` about it,
or serializing a new advisor field without reading it back, would
silently drop data on every save/load cycle.

Checks (all static, cross-module):

* every name in ``LAYERS`` is a field of the ``SentenceAnnotations``
  dataclass, and ``LEXICAL_LAYERS`` ⊆ ``LAYERS``;
* ``SentenceAnnotations.from_lexical`` mentions every lexical layer by
  literal, so shipped payloads rebuild completely;
* every string key the persistence module writes (dict literals,
  subscript stores) is also read somewhere in it (``.get(...)`` or
  subscript loads) — a written-but-never-read key is a field the load
  path silently discards;
* every manifest/segment key the snapshot store's ``save()`` writes
  (``repro.core.snapshots``: manifest format 2 with per-segment files)
  is read somewhere in the module — a manifest field the load/verify
  path never consults is dead weight at best and a checksum hole at
  worst;
* every array name the binary index header schema declares
  (``repro.core.binindex``: ``SEGMENT_ARRAYS`` + ``GLOBAL_ARRAYS``,
  the v4 sidecar's array-name table) is both written by
  ``pack_index()`` and read by ``restore_recommender()`` — a declared
  array the pack side never emits fails every load's name-set
  validation, and one the restore side never consumes is bytes that
  round-trip to nowhere;
* every key the trained pre-filter artifact's writer emits
  (``repro.stage1.model``: ``AdvicePrefilter.to_dict``) is read back by
  ``from_dict`` — a written-but-never-read model field silently
  degrades the filter on every save/load cycle, and because the
  payload is checksummed, a reader that recomputes the checksum over
  different keys than the writer bricks every artifact.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    register,
)
from repro.devtools.lint.rules import string_constant

ANNOTATIONS_MODULE = "repro.pipeline.annotations"
PERSISTENCE_MODULE = "repro.core.persistence"
SNAPSHOTS_MODULE = "repro.core.snapshots"
BININDEX_MODULE = "repro.core.binindex"
STAGE1_MODULE = "repro.stage1.model"


def _tuple_literal(ctx: FileContext, name: str) -> list[str] | None:
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets):
            if isinstance(node.value, (ast.Tuple, ast.List)):
                values = [string_constant(e) for e in node.value.elts]
                if all(v is not None for v in values):
                    return values  # type: ignore[return-value]
    return None


def _class_def(ctx: FileContext, name: str) -> ast.ClassDef | None:
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _function_def(ctx: FileContext, name: str) -> ast.FunctionDef | None:
    for node in ctx.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> set[str]:
    return {item.target.id for item in class_def.body
            if isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)}


def _string_literals(node: ast.AST) -> set[str]:
    return {value for sub in ast.walk(node)
            if (value := string_constant(sub)) is not None}


@register
class PersistenceSchemaSyncRule(Rule):
    id = "persistence-schema-sync"
    severity = "error"
    description = ("annotation layers and persistence JSON keys must "
                   "round-trip: no layer or field is written without "
                   "being read back")

    def check_project(self, project: Project) -> Iterable[Violation]:
        annotations = project.module(ANNOTATIONS_MODULE)
        if annotations is not None:
            yield from self._check_annotations(annotations)
        persistence = project.module(PERSISTENCE_MODULE)
        if persistence is not None:
            yield from self._check_persistence(persistence)
        snapshots = project.module(SNAPSHOTS_MODULE)
        if snapshots is not None:
            yield from self._check_snapshots(snapshots)
        binindex = project.module(BININDEX_MODULE)
        if binindex is not None:
            yield from self._check_binindex(binindex)
        stage1 = project.module(STAGE1_MODULE)
        if stage1 is not None:
            yield from self._check_stage1_model(stage1)

    def _check_annotations(self, ctx: FileContext) -> Iterable[Violation]:
        layers = _tuple_literal(ctx, "LAYERS")
        lexical = _tuple_literal(ctx, "LEXICAL_LAYERS")
        class_def = _class_def(ctx, "SentenceAnnotations")
        if class_def is None:
            return
        fields = _dataclass_fields(class_def)
        for layer in layers or ():
            if layer not in fields:
                yield self.violation(
                    ctx, class_def,
                    f"LAYERS names {layer!r} but SentenceAnnotations has "
                    f"no such field; the layer can never be stored")
        for layer in lexical or ():
            if layers is not None and layer not in layers:
                yield self.violation(
                    ctx, class_def,
                    f"LEXICAL_LAYERS names {layer!r} which is not in "
                    f"LAYERS; the layer serializes but never computes")
        from_lexical = next(
            (item for item in class_def.body
             if isinstance(item, ast.FunctionDef)
             and item.name == "from_lexical"), None)
        if from_lexical is not None:
            mentioned = _string_literals(from_lexical)
            for layer in lexical or ():
                if layer not in mentioned:
                    yield self.violation(
                        ctx, from_lexical,
                        f"from_lexical() never reads lexical layer "
                        f"{layer!r}; worker payloads and v2 files drop "
                        f"it on load")

    def _check_persistence(self, ctx: FileContext) -> Iterable[Violation]:
        written: dict[str, ast.AST] = {}
        read: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    value = string_constant(key) if key is not None else None
                    if value is not None:
                        written.setdefault(value, key)
            elif isinstance(node, ast.Subscript):
                key = string_constant(node.slice)
                if key is None:
                    continue
                if isinstance(node.ctx, ast.Store):
                    written.setdefault(key, node)
                else:
                    read.add(key)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "get" and node.args:
                key = string_constant(node.args[0])
                if key is not None:
                    read.add(key)
        for key in sorted(set(written) - read):
            yield self.violation(
                ctx, written[key],
                f"persistence serializes key {key!r} but never reads it "
                f"back; the field is silently dropped on load")

    def _check_snapshots(self, ctx: FileContext) -> Iterable[Violation]:
        """Manifest/segment keys written by ``save()`` must be read
        somewhere in the module (load, verify, or stats).

        Scoped to ``save`` on the write side: the snapshot module also
        builds plenty of non-schema dict literals (stats payloads,
        verify reports) whose keys are consumed by callers, not by the
        module itself.
        """
        written: dict[str, ast.AST] = {}
        read: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, ast.FunctionDef) and node.name == "save":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Dict):
                        for key in sub.keys:
                            value = string_constant(key) \
                                if key is not None else None
                            if value is not None:
                                written.setdefault(value, key)
                    elif isinstance(sub, ast.Subscript) and \
                            isinstance(sub.ctx, ast.Store):
                        value = string_constant(sub.slice)
                        if value is not None:
                            written.setdefault(value, sub)
            elif isinstance(node, ast.Subscript) and \
                    not isinstance(node.ctx, ast.Store):
                key = string_constant(node.slice)
                if key is not None:
                    read.add(key)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("get", "pop") and node.args:
                # .pop(key) is how the load path consumes-and-strips
                # reshaping keys (e.g. segment_count), so it counts
                # as a read
                key = string_constant(node.args[0])
                if key is not None:
                    read.add(key)
        for key in sorted(set(written) - read):
            yield self.violation(
                ctx, written[key],
                f"snapshot save() writes manifest key {key!r} but the "
                f"module never reads it; the load/verify path silently "
                f"ignores the field")

    def _check_stage1_model(self, ctx: FileContext) -> Iterable[Violation]:
        """Every key ``AdvicePrefilter.to_dict`` writes must be read by
        ``from_dict`` (subscript load or ``.get(...)``).

        Scoped to the two methods: the module also builds training
        metadata dicts whose keys are consumed elsewhere, and a
        module-wide scan would satisfy the check trivially.
        """
        class_def = _class_def(ctx, "AdvicePrefilter")
        if class_def is None:
            return
        to_dict = next((item for item in class_def.body
                        if isinstance(item, ast.FunctionDef)
                        and item.name == "to_dict"), None)
        from_dict = next((item for item in class_def.body
                          if isinstance(item, ast.FunctionDef)
                          and item.name == "from_dict"), None)
        if to_dict is None or from_dict is None:
            return
        written: dict[str, ast.AST] = {}
        for node in ast.walk(to_dict):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    value = string_constant(key) if key is not None else None
                    if value is not None:
                        written.setdefault(value, key)
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, ast.Store):
                value = string_constant(node.slice)
                if value is not None:
                    written.setdefault(value, node)
        read: set[str] = set()
        for node in ast.walk(from_dict):
            if isinstance(node, ast.Subscript) and \
                    not isinstance(node.ctx, ast.Store):
                key = string_constant(node.slice)
                if key is not None:
                    read.add(key)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "get" and node.args:
                key = string_constant(node.args[0])
                if key is not None:
                    read.add(key)
        for key in sorted(set(written) - read):
            yield self.violation(
                ctx, written[key],
                f"AdvicePrefilter.to_dict() writes artifact key {key!r} "
                f"but from_dict() never reads it; the field is silently "
                f"dropped on every model load")

    def _check_binindex(self, ctx: FileContext) -> Iterable[Violation]:
        """Every array the binary header schema declares must be
        written by ``pack_index`` and read by ``restore_recommender``.

        Scoped to those two functions by name: the module-level
        ``ARRAY_DTYPES`` table mentions every array too, so a
        module-wide literal scan would satisfy both sides trivially
        and the check would never fire.
        """
        declared = ((_tuple_literal(ctx, "SEGMENT_ARRAYS") or [])
                    + (_tuple_literal(ctx, "GLOBAL_ARRAYS") or []))
        if not declared:
            return
        pack = _function_def(ctx, "pack_index")
        restore = _function_def(ctx, "restore_recommender")
        packed = _string_literals(pack) if pack is not None else None
        restored = (_string_literals(restore)
                    if restore is not None else None)
        for name in declared:
            if packed is not None and name not in packed:
                yield self.violation(
                    ctx, pack,
                    f"binary header schema declares array {name!r} but "
                    f"pack_index() never writes it; every load fails "
                    f"the sidecar's array-name-set validation")
            if restored is not None and name not in restored:
                yield self.violation(
                    ctx, restore,
                    f"binary header schema declares array {name!r} but "
                    f"restore_recommender() never reads it; the bytes "
                    f"round-trip to nowhere")
