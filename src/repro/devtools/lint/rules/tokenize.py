"""no-direct-tokenize — lexical analysis goes through the pipeline.

Origin: the one-pass annotation pipeline (PR 2) exists because Stage II
silently re-tokenized every sentence instead of reusing the
``AnalysisStore`` artifact — the ``extend()``-era regression in
``retrieval/``.  Re-introducing a direct ``WordTokenizer`` /
``PorterStemmer`` / ``word_tokenize`` call outside the text-processing
substrate or the pipeline stages re-opens exactly that hole: work the
artifact already carries gets recomputed, and the zero-re-tokenization
persistence guarantee quietly breaks.

Outside ``repro.textproc`` and ``repro.pipeline``, both importing and
calling the tokenizer/stemmer primitives is flagged.  Legitimate
boundary uses — analyzing *query* text, raw-sentence entry points like
the parser and tagger — carry ``# egeria: noqa[no-direct-tokenize]``
with a reason, which doubles as an inventory of every place lexical
analysis happens off-pipeline.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import module_in_scope

#: modules allowed to touch the primitives directly
ALLOWED_PREFIXES = ("repro.textproc", "repro.pipeline", "repro.devtools")

#: the guarded primitive names
PRIMITIVES = {"WordTokenizer", "word_tokenize", "PorterStemmer", "stem"}

#: textproc modules whose imports are guarded
_TEXTPROC_MODULES = ("repro.textproc", "repro.textproc.word_tokenizer",
                     "repro.textproc.porter")


@register
class NoDirectTokenizeRule(Rule):
    id = "no-direct-tokenize"
    severity = "error"
    description = ("tokenizer/stemmer primitives outside repro.textproc / "
                   "repro.pipeline must go through annotation payloads")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        if module_in_scope(ctx.module, ALLOWED_PREFIXES):
            return
        guarded: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, ast.ImportFrom):
                if node.module not in _TEXTPROC_MODULES:
                    continue
                hits = [alias for alias in node.names
                        if alias.name in PRIMITIVES]
                for alias in hits:
                    violation = self.violation(
                        ctx, node,
                        f"direct import of {alias.name!r} from "
                        f"repro.textproc; consume tokens/stems/terms from "
                        f"the annotation artifact instead")
                    # a noqa-justified import waives the per-call checks
                    # too — the justification lives once, at the import
                    if not ctx.is_suppressed(violation):
                        guarded.add(alias.asname or alias.name)
                    yield violation
        for node in ctx.walk():
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in guarded:
                yield self.violation(
                    ctx, node,
                    f"direct call to {node.func.id!r} re-tokenizes text "
                    f"the annotation pipeline already analyzed")
