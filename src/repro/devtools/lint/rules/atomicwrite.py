"""atomic-write — persistence writers must not truncate in place.

Origin: the crash-safety work on the snapshot store.  A bare
``open(path, "w")`` truncates the destination *before* the new bytes
land, so a crash mid-write leaves a torn or empty file where a good
one used to be — exactly the failure the write-to-temp → fsync →
``os.replace`` protocol in :mod:`repro.core.persistence` exists to
prevent.  Durability is only as strong as the sloppiest writer in the
persistence layer, so every writer there must either go through the
atomic helpers or implement the same rename dance itself.

Scope: the modules that own durable on-disk state —
``repro.core.persistence``, ``repro.core.snapshots``,
``repro.core.config``, and ``repro.pipeline.store``.  Flags any
write-mode ``open()`` (mode containing ``w``/``a``/``x``/``+``) unless
the enclosing function is itself an atomic-write primitive (its name
contains ``atomic``) or performs the rename commit (calls
``os.replace``/``os.rename`` somewhere in its body).  Read-mode opens
and opens elsewhere in the tree are none of this rule's business.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import module_in_scope, string_constant

SCOPE_MODULES = (
    "repro.core.persistence",
    "repro.core.snapshots",
    "repro.core.config",
    "repro.pipeline.store",
)

_WRITE_MODE_CHARS = set("wax+")
_COMMIT_CALLS = {"replace", "rename"}


def _open_mode(node: ast.Call) -> str | None:
    """The mode of an ``open()`` call, if statically known."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return None
    if len(node.args) >= 2:
        return string_constant(node.args[1])
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return string_constant(keyword.value)
    return "r"  # open() with no mode defaults to read


def _commits_via_rename(func: ast.AST) -> bool:
    """True when *func* calls ``os.replace``/``os.rename`` itself."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _COMMIT_CALLS and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == "os":
            return True
    return False


@register
class AtomicWriteRule(Rule):
    id = "atomic-write"
    severity = "error"
    description = ("write-mode open() in the persistence layer must go "
                   "through the atomic write-temp-then-rename helpers")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        if not module_in_scope(ctx.module, SCOPE_MODULES):
            return
        # attribute each write-mode open to its *innermost* enclosing
        # function (module level counts as no function — always flagged)
        flagged: list[Violation] = []

        def visit(node: ast.AST, enclosing) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = node
            if isinstance(node, ast.Call) and self._is_write_open(node):
                atomic = enclosing is not None and (
                    "atomic" in enclosing.name.lower()
                    or _commits_via_rename(enclosing))
                if not atomic:
                    flagged.append(self._flag(
                        ctx, node,
                        enclosing.name if enclosing is not None
                        else "<module>"))
            for child in ast.iter_child_nodes(node):
                visit(child, enclosing)

        visit(ctx.tree, None)
        yield from flagged

    @staticmethod
    def _is_write_open(node: ast.Call) -> bool:
        mode = _open_mode(node)
        return mode is not None and bool(set(mode) & _WRITE_MODE_CHARS)

    def _flag(self, ctx: FileContext, node: ast.Call,
              where: str) -> Violation:
        return self.violation(
            ctx, node,
            f"write-mode open() in {where}() truncates in place; a "
            f"crash mid-write corrupts the file — use "
            f"atomic_write_text/atomic_write_bytes or stage to a temp "
            f"path and os.replace() it")
