"""no-bare-assert — runtime invariants must raise, not ``assert``.

Origin: PR 1 shipped ``assert last is not None`` in the retry policy
and PR 2 found (and fixed) a bare assert guarding the Table 7/8 counts
in ``recognizer.summary()``.  ``python -O`` strips every assert
statement, so an invariant guarded this way silently vanishes in
optimized deployments — exactly the failure mode a serving system
cannot afford.  Library code must raise a real exception with context
instead; ``assert`` stays legal in tests (which are not linted), in
explicitly suppressed type-narrowing spots, and in ``benchmarks/`` —
the benches are self-checking harnesses whose asserts *are* the
measurement contract (correctness cross-checks between variants), are
never run under ``-O``, and are exempted so the CI gate can lint the
directory for every other rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import module_in_scope

#: self-checking harnesses: asserts are the point, never run under -O
EXEMPT_PREFIXES = ("benchmarks",)


@register
class NoBareAssertRule(Rule):
    id = "no-bare-assert"
    severity = "error"
    description = ("assert statements vanish under `python -O`; raise an "
                   "explicit exception for runtime invariants "
                   "(benchmarks/ exempt: self-checking harnesses)")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        if module_in_scope(ctx.module, EXEMPT_PREFIXES):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Assert):
                yield self.violation(
                    ctx, node,
                    "bare assert is stripped by `python -O`; raise an "
                    "explicit exception with context instead")
