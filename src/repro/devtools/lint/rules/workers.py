"""worker-shared-state — fork-shipped functions must not mutate module
globals.

Origin: the recognizer's multiprocessing pool runs top-level functions
in forked workers.  Worker-side initialization goes through the
sanctioned ``_init_worker`` initializer into ``_WORKER_STATE``; any
*other* function mutating module-level mutable state is a latent bug
twice over — under fork the mutation is invisible to the parent (state
silently diverges per process), and under threads it is a data race.

Scope: ``repro.core``, ``repro.pipeline``, ``repro.retrieval``.  Flags,
inside any function not named like an ``_init_worker`` initializer:
mutations of module-level mutable bindings (subscript stores, mutating
method calls like ``append``/``update``), and any ``global`` statement
(rebinding module state from inside a function).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import module_in_scope, walk_functions

SCOPE_PREFIXES = ("repro.core", "repro.pipeline", "repro.retrieval")

#: pool initializers are the one sanctioned place to fill worker state
ALLOWED_INITIALIZER_PREFIX = "_init_worker"

#: method calls that mutate their receiver
MUTATOR_METHODS = {"append", "extend", "insert", "add", "update",
                   "setdefault", "pop", "popitem", "remove", "discard",
                   "clear", "__setitem__"}

#: value expressions that create module-level mutable state
_MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                  ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "defaultdict", "Counter",
                         "OrderedDict", "deque"}


def _module_mutables(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        is_mutable = isinstance(value, _MUTABLE_NODES) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS)
        if not is_mutable:
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _local_shadows(function: ast.AST, name: str) -> bool:
    """True when *function* rebinds *name* locally (param or assign)."""
    args = getattr(function, "args", None)
    if args is not None:
        all_args = (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else []))
        if any(a.arg == name for a in all_args):
            return True
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets):
            return True
    return False


@register
class WorkerSharedStateRule(Rule):
    id = "worker-shared-state"
    severity = "error"
    description = ("functions in core/pipeline/retrieval must not mutate "
                   "module-level mutable state (fork divergence / thread "
                   "races); only _init_worker initializers may")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        if not module_in_scope(ctx.module, SCOPE_PREFIXES):
            return
        mutables = _module_mutables(ctx.tree)
        for function in walk_functions(ctx.tree):
            if function.name.startswith(ALLOWED_INITIALIZER_PREFIX):
                continue
            for node in ast.walk(function):
                if isinstance(node, ast.Global):
                    yield self.violation(
                        ctx, node,
                        f"`global {', '.join(node.names)}` rebinds module "
                        f"state from inside {function.name}(); pass state "
                        f"explicitly or keep it on an instance")
                    continue
                target_name = _mutation_target(node, mutables)
                if target_name is None:
                    continue
                if _local_shadows(function, target_name):
                    continue
                yield self.violation(
                    ctx, node,
                    f"{function.name}() mutates module-level "
                    f"{target_name!r}; under forked workers the mutation "
                    f"never reaches the parent (move it into an "
                    f"{ALLOWED_INITIALIZER_PREFIX}* initializer or pass "
                    f"state explicitly)")


def _mutation_target(node: ast.AST, mutables: set[str]) -> str | None:
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Subscript) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id in mutables:
                return target.value.id
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr in MUTATOR_METHODS and \
            isinstance(node.func.value, ast.Name) and \
            node.func.value.id in mutables:
        return node.func.value.id
    return None
