"""fault-point-coverage — chaos testing only covers what is hooked.

Origin: the resilience layer (PR 1) injects failures at *named* fault
points, and the one-pass pipeline (PR 2) promised that "every stage
keeps its historical fault point" so chaos plans written against the
old layout keep working.  Nothing enforced either claim.  This rule
does, statically:

* every ``Stage`` class in ``repro.pipeline.stages`` (a class with a
  ``provides`` attribute and a ``run`` method, excluding the Protocol
  itself) must call ``fault_point("<literal>")`` inside ``run`` — a new
  stage without a hook is invisible to every chaos plan.  A *wrapper*
  stage that delegates — ``self.<attr>.run(annotations)`` inside its
  own ``run`` — counts as hooked through the stage it wraps (the
  per-layer lazy wrapper pattern: ``ObservedStage`` times the inner
  stage, whose own ``fault_point`` still fires), so wrapping never
  orphans a layer's fault point;
* ``fault_point`` must be called with a string literal, so plans can be
  audited against the source;
* every point named in a ``FaultSpec(point=...)`` literal (e.g. the
  canned chaos plan) must have a matching ``fault_point`` call site
  somewhere in the linted tree — an orphan plan entry tests nothing.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import (
    FileContext,
    Project,
    Rule,
    Violation,
    register,
)
from repro.devtools.lint.rules import string_constant

STAGES_MODULE = "repro.pipeline.stages"


def _fault_point_calls(ctx: FileContext) -> Iterable[tuple[ast.Call,
                                                           str | None]]:
    for node in ctx.walk():
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "fault_point":
            name = (string_constant(node.args[0])
                    if node.args else None)
            yield node, name


def _is_protocol(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        if isinstance(base, ast.Name) and base.id == "Protocol":
            return True
        if isinstance(base, ast.Attribute) and base.attr == "Protocol":
            return True
        if isinstance(base, ast.Subscript):
            value = base.value
            if isinstance(value, ast.Name) and value.id == "Protocol":
                return True
    return False


def _delegates_run(run: ast.FunctionDef) -> bool:
    """True when *run* calls ``self.<attr>.run(...)`` — a wrapper stage
    whose fault point lives in the stage it wraps."""
    for node in ast.walk(run):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "run"):
            continue
        inner = node.func.value
        if isinstance(inner, ast.Attribute) \
                and isinstance(inner.value, ast.Name) \
                and inner.value.id == "self":
            return True
    return False


def _stage_classes(ctx: FileContext) -> Iterable[ast.ClassDef]:
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef) or _is_protocol(node):
            continue
        has_provides = any(
            (isinstance(item, ast.Assign)
             and any(isinstance(t, ast.Name) and t.id == "provides"
                     for t in item.targets))
            or (isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and item.target.id == "provides")
            for item in node.body)
        has_run = any(isinstance(item, ast.FunctionDef)
                      and item.name == "run" for item in node.body)
        if has_provides and has_run:
            yield node


@register
class FaultPointCoverageRule(Rule):
    id = "fault-point-coverage"
    severity = "error"
    description = ("every pipeline Stage must hook a literal fault point; "
                   "fault plans must not name orphan points")

    def check_project(self, project: Project) -> Iterable[Violation]:
        hooked: set[str] = set()
        for ctx in project:
            for call, name in _fault_point_calls(ctx):
                if name is None:
                    yield self.violation(
                        ctx, call,
                        "fault_point() must be called with a string "
                        "literal so chaos plans can be audited against "
                        "the source")
                else:
                    hooked.add(name)
        stages_ctx = project.module(STAGES_MODULE)
        if stages_ctx is not None:
            yield from self._check_stages(stages_ctx)
        for ctx in project:
            yield from self._check_spec_points(ctx, hooked)

    def _check_stages(self, ctx: FileContext) -> Iterable[Violation]:
        for class_def in _stage_classes(ctx):
            run = next(item for item in class_def.body
                       if isinstance(item, ast.FunctionDef)
                       and item.name == "run")
            has_hook = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "fault_point"
                and node.args and string_constant(node.args[0]) is not None
                for node in ast.walk(run))
            if not has_hook and not _delegates_run(run):
                yield self.violation(
                    ctx, class_def,
                    f"stage {class_def.name!r} has no fault_point() hook "
                    f"in run() and does not delegate to a wrapped "
                    f"stage's run(); the stage is invisible to every "
                    f"chaos plan")

    def _check_spec_points(self, ctx: FileContext,
                           hooked: set[str]) -> Iterable[Violation]:
        for node in ctx.walk():
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "FaultSpec"):
                continue
            point: str | None = None
            point_node: ast.AST = node
            for keyword in node.keywords:
                if keyword.arg == "point":
                    point = string_constant(keyword.value)
                    point_node = keyword.value
            if point is None and node.args:
                point = string_constant(node.args[0])
                point_node = node.args[0]
            if point is not None and point not in hooked:
                yield self.violation(
                    ctx, point_node,
                    f"fault plan names point {point!r} but no "
                    f"fault_point({point!r}) call site exists — the "
                    f"spec injects nothing")
