"""frozen-state-mutation — no attribute assignment on frozen state
after construction; publication only by reference swap.

Origin: the zero-downtime reload design (PR 6/7) hinges on one rule —
the served index handle (``_IndexState``, ``IndexSegment``) is deeply
immutable, and a writer publishes changes by building a *new* instance
and swapping one reference under the GIL.  A single in-place mutation
reintroduces every torn-read bug the design eliminated, and nothing
checked for it: ``@dataclass(frozen=True)`` raises only at runtime and
only through ``setattr``, while hand-sealed ``__slots__`` classes had
no guard at all.

The rule makes the promise static.  A class is *frozen* when declared
``@dataclass(frozen=True)`` or when its ``class`` line carries a
``# egeria: frozen`` pragma.  Flagged:

* ``self.attr = ...`` inside a frozen class's own methods outside the
  constructor set (``__init__``/``__post_init__``/``__new__``/
  ``__setstate__``, which build the not-yet-shared object — sealed
  ``__slots__`` classes assign there via ``object.__setattr__``);
* ``self.x.attr = ...`` where ``x`` is an attribute every assignment
  of which (project-wide, per class) constructs a frozen class;
* ``name.attr = ...`` where local ``name`` is only ever bound to a
  frozen-class construction in the enclosing function.

Purely syntactic type inference, deliberately conservative: an
attribute or local with *any* non-construction binding is not tracked.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.devtools.lint.concurrency import (
    CONSTRUCTOR_METHODS,
    classes,
    methods,
    model_for,
    self_attr,
)
from repro.devtools.lint.engine import FileContext, Project, Rule, \
    Violation, register


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _frozen_locals(func: ast.AST, model) -> dict[str, str]:
    """Locals of *func* bound exclusively to frozen constructions."""
    bindings: dict[str, set[str | None]] = {}
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        for target in _assign_targets(node):
            if isinstance(target, ast.Name):
                bindings.setdefault(target.id, set()).add(
                    model._frozen_constructor(node.value))
    return {name: next(iter(sources))
            for name, sources in bindings.items()
            if len(sources) == 1 and None not in sources}


@register
class FrozenStateMutationRule(Rule):
    id = "frozen-state-mutation"
    severity = "error"
    description = ("no attribute assignment on frozen state "
                   "(`@dataclass(frozen=True)` or `# egeria: frozen`) "
                   "after construction; publish a new instance and "
                   "swap the reference")

    def check_project(self, project: Project) -> Iterable[Violation]:
        model = model_for(project)
        if not model.frozen:
            return
        for ctx in project:
            yield from self._check_own_methods(ctx, model)
            yield from self._check_held_instances(ctx, model)

    # self.attr = ... inside the frozen class itself
    def _check_own_methods(self, ctx: FileContext,
                           model) -> Iterator[Violation]:
        for classdef in classes(ctx.tree):
            if classdef.name not in model.frozen:
                continue
            for func in methods(classdef):
                if func.name in CONSTRUCTOR_METHODS:
                    continue
                for node in ast.walk(func):
                    if not isinstance(node, (ast.Assign, ast.AugAssign,
                                             ast.AnnAssign)):
                        continue
                    for target in _assign_targets(node):
                        attr = self_attr(target)
                        if attr is None:
                            continue
                        yield self.violation(
                            ctx, node,
                            f"frozen class {classdef.name} mutates "
                            f"self.{attr} in {func.name}(); frozen "
                            f"state is sealed at construction — build "
                            f"a new instance instead")

    # name.attr = ... / self.x.attr = ... through frozen-typed handles
    def _check_held_instances(self, ctx: FileContext,
                              model) -> Iterator[Violation]:
        for classdef in classes(ctx.tree):
            frozen_attrs = model.frozen_attrs.get(classdef.name, {})
            for func in methods(classdef):
                frozen_locals = _frozen_locals(func, model)
                for node in ast.walk(func):
                    if not isinstance(node, (ast.Assign, ast.AugAssign,
                                             ast.AnnAssign)):
                        continue
                    for target in _assign_targets(node):
                        if not isinstance(target, ast.Attribute):
                            continue
                        owner = target.value
                        hit: tuple[str, str] | None = None
                        attr = self_attr(owner)
                        if attr is not None and attr in frozen_attrs:
                            hit = (f"self.{attr}", frozen_attrs[attr])
                        elif isinstance(owner, ast.Name) and \
                                owner.id in frozen_locals:
                            hit = (owner.id, frozen_locals[owner.id])
                        if hit is None:
                            continue
                        handle, frozen_class = hit
                        yield self.violation(
                            ctx, node,
                            f"{classdef.name}.{func.name}() assigns "
                            f".{target.attr} on {handle}, a frozen "
                            f"{frozen_class} instance; publish a new "
                            f"{frozen_class} and swap the reference")
