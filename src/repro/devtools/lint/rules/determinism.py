"""no-nondeterminism — the analysis core stays reproducible.

Origin: DESIGN.md §8's standing convention ("every stochastic component
takes an explicit seed") and the fault injector's per-point seeded RNG
streams, which exist precisely so chaos runs are reproducible across
worker counts.  A stray ``random.random()`` or wall-clock ``time.time``
branch inside the analysis core breaks score-identity between runs —
the property every benchmark and the annotation-reuse guarantee lean
on.

Scope: ``repro.core``, ``repro.pipeline``, ``repro.retrieval``.  Flags
the module-global RNGs (``random.<fn>``, unseeded ``random.Random()``,
``numpy.random.<fn>`` other than ``default_rng``/``Generator``/
``SeedSequence``) and wall-clock ``time.time()``.  Monotonic and
perf-counter clocks stay legal — measuring duration is fine, branching
on the wall clock is not.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import module_in_scope

SCOPE_PREFIXES = ("repro.core", "repro.pipeline", "repro.retrieval")

#: in-scope modules exempt from the rule: benchmark fixture generators
#: whose whole contract is a pinned seed (``BENCH_SEED``) — their RNG
#: use is the reproducibility mechanism, not a violation of it
EXEMPT_MODULES = frozenset({"repro.retrieval.bench_fixtures"})

#: numpy.random entry points that take explicit seeds
_SEEDED_NUMPY = {"default_rng", "Generator", "SeedSequence"}


def _numpy_random_attr(func: ast.Attribute) -> str | None:
    """"np.random.<attr>" / "numpy.random.<attr>" → attr name."""
    value = func.value
    if isinstance(value, ast.Attribute) and value.attr == "random" and \
            isinstance(value.value, ast.Name) and \
            value.value.id in {"np", "numpy"}:
        return func.attr
    return None


@register
class NoNondeterminismRule(Rule):
    id = "no-nondeterminism"
    severity = "error"
    description = ("no module-global RNGs or wall-clock reads in "
                   "core/pipeline/retrieval; plumb explicit seeds")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        if not module_in_scope(ctx.module, SCOPE_PREFIXES):
            return
        if ctx.module in EXEMPT_MODULES:
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if isinstance(func.value, ast.Name):
                if func.value.id == "random":
                    if func.attr == "Random":
                        if not node.args and not node.keywords:
                            yield self.violation(
                                ctx, node,
                                "unseeded random.Random() in the analysis "
                                "core; pass an explicit seed")
                        continue
                    if func.attr == "SystemRandom":
                        continue
                    yield self.violation(
                        ctx, node,
                        f"module-global random.{func.attr}() makes the "
                        f"analysis core nondeterministic; use a seeded "
                        f"random.Random instance")
                    continue
                if func.value.id == "time" and func.attr == "time":
                    yield self.violation(
                        ctx, node,
                        "wall-clock time.time() in the analysis core; "
                        "use time.monotonic()/perf_counter() for "
                        "durations, or plumb the timestamp in")
                    continue
            numpy_attr = _numpy_random_attr(func)
            if numpy_attr is not None and numpy_attr not in _SEEDED_NUMPY:
                yield self.violation(
                    ctx, node,
                    f"numpy.random.{numpy_attr}() uses the global numpy "
                    f"RNG; create a numpy.random.default_rng(seed)")
