"""The egeria-lint rule set.

Importing this package registers every built-in rule with the engine
registry (see :func:`repro.devtools.lint.engine.register`).  Each rule
encodes one invariant of the existing architecture; the origin story of
every rule is documented in DESIGN.md §8.

Shared AST helpers live here, *above* the submodule imports at the
bottom — the rule modules import them back from this package, so they
must already be bound when the submodules load.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator


def module_in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    """True when *module* is one of *prefixes* or inside one of them.

    Prefixes match on dotted-name boundaries — ``repro.core`` covers
    ``repro.core.recognizer`` but not ``repro.corpus``.
    """
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in prefixes)


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef
                                              | ast.AsyncFunctionDef]:
    """Every function/method definition in *tree*, any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_name(node: ast.Call) -> str | None:
    """The called name: ``foo(...)`` → "foo", ``a.b.foo(...)`` → "foo"."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def string_constant(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# registration side effects — one module per rule (or rule family);
# deliberately after the helper definitions (see module docstring)
from repro.devtools.lint.rules import (  # noqa: E402,F401
    asserts,
    atomicwrite,
    determinism,
    excepts,
    exports,
    faultpoints,
    frozenstate,
    lockdiscipline,
    lockorder,
    persistence_sync,
    tokenize,
    unguarded,
    workers,
)
