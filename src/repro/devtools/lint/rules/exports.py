"""export-consistency — ``__all__`` is a contract, keep it true.

Origin: every subpackage's ``__init__`` re-exports its public API
through ``__all__``, and downstream code (docs generation, the CLI's
lazy loader) trusts it.  A name listed but never defined raises only
on ``from repro.x import *`` or ``gen_api_docs`` runs — i.e. late; a
duplicate entry hides drift in review diffs; a public class defined in
a module that declares ``__all__`` but omits the class silently ships
private API.

Modules whose ``__all__`` is not a plain literal list of strings (e.g.
the lazy ``[*_EXPORTS, "__version__"]`` in ``repro/__init__``) are
skipped — they cannot be verified statically.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import string_constant


def _literal_all(tree: ast.Module) -> tuple[ast.Assign, list[str]] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets):
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                return None
            names = [string_constant(e) for e in node.value.elts]
            if any(name is None for name in names):
                return None
            return node, names  # type: ignore[return-value]
    return None


def _top_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _public_defs(tree: ast.Module) -> set[str]:
    """Classes/functions *defined* here (imports excluded) that look
    public."""
    return {node.name for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
            and not node.name.startswith("_")}


@register
class ExportConsistencyRule(Rule):
    id = "export-consistency"
    severity = "error"
    description = ("__all__ entries must exist, be unique, and cover "
                   "the module's public defs")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        found = _literal_all(ctx.tree)
        if found is None:
            return
        assign, exported = found
        defined = _top_level_names(ctx.tree)
        seen: set[str] = set()
        for name in exported:
            if name in seen:
                yield self.violation(
                    ctx, assign,
                    f"__all__ lists {name!r} twice")
            seen.add(name)
            if name not in defined and name != "__version__":
                yield self.violation(
                    ctx, assign,
                    f"__all__ exports {name!r} but the module never "
                    f"defines or imports it; `import *` would raise")
        for name in sorted(_public_defs(ctx.tree) - seen):
            yield self.violation(
                ctx, assign,
                f"public definition {name!r} is missing from __all__; "
                f"either export it or rename it _private")
