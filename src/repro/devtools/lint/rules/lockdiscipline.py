"""lock-discipline — writes to ``guarded-by``-declared attributes must
be dominated by the declared lock.

Origin: PR 4–7 grew a genuinely concurrent core (threaded WSGI, an
RLock-serialized ``extend()``, a background compaction daemon), and
every one of those paths relies on a "writers hold lock X" contract
that lived only in prose.  A ``# egeria: guarded-by[self._lock]``
pragma on the attribute's initialization turns the contract into data;
this rule checks it with the held-locks dataflow: at every write to a
declared attribute — rebinding, item store, ``del``, or an in-place
mutator call — the declared lock must be *definitely held* on every
path reaching the write.

Flow-aware on purpose: ``if fast: return`` before the ``with`` block,
a ``release()`` in one branch but not the other, or a write hoisted
above the ``with`` are exactly the shapes a per-node visitor blesses
and this analysis flags.

Exemptions: constructor methods (``__init__`` and friends — the object
is not yet shared) and ``*_locked`` helpers (the suffix asserts the
caller holds the lock; see DESIGN.md §13).  Declarations are inherited
by subclasses.  Writes inside functions nested in a method run under
the *caller's* locks and are out of intraprocedural scope.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.devtools.lint.concurrency import (
    CONSTRUCTOR_METHODS,
    MUTATOR_METHODS,
    GuardDecl,
    caller_holds_lock,
    classes,
    holds,
    methods,
    model_for,
    self_attr,
    walk_point,
)
from repro.devtools.lint.engine import Project, Rule, Violation, register


def guarded_writes(root: ast.AST,
                   guards: dict[str, GuardDecl]) -> Iterator[
                       tuple[str, ast.AST, str]]:
    """Yield ``(attr, anchor, how)`` for every write *root* performs to
    a declared attribute."""
    for sub in walk_point(root):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for target in targets:
                attr = self_attr(target)
                if attr in guards:
                    yield attr, sub, "assigns"
                if isinstance(target, ast.Subscript):
                    attr = self_attr(target.value)
                    if attr in guards:
                        yield attr, sub, "stores into"
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    attr = self_attr(target.value)
                    if attr in guards:
                        yield attr, sub, "deletes from"
        elif isinstance(sub, ast.Call) and \
                isinstance(sub.func, ast.Attribute) and \
                sub.func.attr in MUTATOR_METHODS:
            attr = self_attr(sub.func.value)
            if attr in guards:
                yield attr, sub, f"calls .{sub.func.attr}() on"


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    severity = "error"
    description = ("writes to attributes declared "
                   "`# egeria: guarded-by[lock]` must happen with the "
                   "declared lock definitely held on every path "
                   "(constructors and *_locked helpers exempt)")

    def check_project(self, project: Project) -> Iterable[Violation]:
        model = model_for(project)
        for ctx in project:
            for classdef in classes(ctx.tree):
                guards = model.guards_for(classdef.name)
                if not guards:
                    continue
                for func in methods(classdef):
                    if func.name in CONSTRUCTOR_METHODS or \
                            caller_holds_lock(func):
                        continue
                    yield from self._check_method(
                        ctx, model, classdef.name, func, guards)

    def _check_method(self, ctx, model, class_name, func,
                      guards) -> Iterator[Violation]:
        flow = model.flow(func)
        for held, nodes in flow.points():
            for root in nodes:
                for attr, anchor, how in guarded_writes(root, guards):
                    decl = guards[attr]
                    if holds(held, decl.lock):
                        continue
                    yield self.violation(
                        ctx, anchor,
                        f"{class_name}.{func.name}() {how} self.{attr} "
                        f"without holding {decl.lock} (declared "
                        f"guarded-by at {decl.path}); take the lock, or "
                        f"suffix the helper `_locked` if the caller "
                        f"holds it")
