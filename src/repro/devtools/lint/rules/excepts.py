"""no-silent-except — broad handlers on the serving path must tell
someone.

Origin: the resilience layer's whole design is that failures are
*recorded* — as log lines, ``DegradationEvent`` records, or health
counters — never dropped.  A ``except Exception: pass`` in the
recognizer or the WSGI app silently converts a failing NLP layer into
missing data (the pre-PR-3 ``_classify_batch`` did exactly this for the
terms layer).  This rule scopes to the serving/recognizer path and
flags any broad handler (bare ``except``, ``except Exception`` /
``BaseException``) whose body neither raises, logs, records a
``DegradationEvent``, nor ticks a counter.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.engine import FileContext, Rule, Violation, register
from repro.devtools.lint.rules import module_in_scope

#: the serving / recognizer path (where silent drops corrupt health
#: reporting) — everything else may handle errors however it likes
SCOPE_PREFIXES = (
    "repro.web",
    "repro.resilience",
    "repro.core.recognizer",
    "repro.core.advisor",
)

#: exception names considered "broad"
BROAD_NAMES = {"Exception", "BaseException"}

#: attribute calls that count as recording the failure
_RECORDING_ATTRS = {
    "debug", "info", "warning", "error", "exception", "critical", "log",
    "record_failure", "record_event",
}

#: counter-object methods that count as ticking a health counter
#: (``ThreadSafeCounters.increment`` replaced ``counters[...] += 1``
#: on the threaded serving path)
_COUNTER_METHODS = {"increment"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:       # bare except
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [e for e in handler.type.elts]
    else:
        names = [handler.type]
    for name in names:
        if isinstance(name, ast.Name) and name.id in BROAD_NAMES:
            return True
        if isinstance(name, ast.Attribute) and name.attr in BROAD_NAMES:
            return True
    return False


def _records_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "DegradationEvent":
                return True
            # a local recording helper: record_failure(selector, error)
            if isinstance(func, ast.Name) and func.id in _RECORDING_ATTRS:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr == "DegradationEvent":
                    return True
                # self.counters.increment("errors")
                if func.attr in _COUNTER_METHODS and \
                        _mentions_counter(func.value):
                    return True
                value = func.value
                # logger.warning(...), logging.exception(...), …
                if func.attr in _RECORDING_ATTRS and (
                        isinstance(value, ast.Name)
                        and "log" in value.id.lower()
                        or isinstance(value, ast.Attribute)
                        and "log" in value.attr.lower()):
                    return True
        # self.counters["errors"] += 1 / counters[...] = …
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript) and \
                        _mentions_counter(target.value):
                    return True
    return False


def _mentions_counter(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "counter" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "counter" in node.attr.lower()
    return False


@register
class NoSilentExceptRule(Rule):
    id = "no-silent-except"
    severity = "error"
    description = ("broad except handlers on the serving/recognizer path "
                   "must log, record a DegradationEvent, tick a counter, "
                   "or re-raise")

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        if not module_in_scope(ctx.module, SCOPE_PREFIXES):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _records_failure(node):
                yield self.violation(
                    ctx, node,
                    "broad except handler drops the failure silently; "
                    "log it, record a DegradationEvent, tick a health "
                    "counter, or re-raise")
