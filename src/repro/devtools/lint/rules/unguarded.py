"""unguarded-counter — stats/health read paths must not read mutable
guarded state outside its lock.

Origin: the observability surfaces — ``LRUQueryCache.stats()``,
``AdvisingTool.health()``, the WSGI ``/healthz`` handler — report
counters that worker threads update concurrently.  A read outside the
lock can tear: ``hits`` sampled before an update, ``misses`` after,
and the reported ratios are nonsense precisely when traffic is heavy
enough for someone to be looking.  These paths regress easily because
they *look* read-only and harmless.

Scope: methods whose name says they report state (``stats``,
``health``, ``healthz``, ``metrics``, ``status``, ``snapshot``,
``counters``).  In those, every **read** of an attribute declared
``# egeria: guarded-by[lock]`` *with a mutable initializer* (dict /
list / set / Counter / OrderedDict / …) must sit at a program point
where the dataflow proves the declared lock held.  Immutable-typed
guarded attributes (an int generation, a swapped frozen handle) read
atomically under the GIL and stay out of scope — as do writes, which
are lock-discipline's business.

Exemption: ``*_locked`` helpers (caller holds the lock).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from repro.devtools.lint.concurrency import (
    GuardDecl,
    caller_holds_lock,
    classes,
    holds,
    methods,
    model_for,
    self_attr,
    walk_point,
)
from repro.devtools.lint.engine import Project, Rule, Violation, register

#: method names that constitute a reporting/read path
READ_PATH_RE = re.compile(
    r"stats|health|metrics|status|snapshot|counters", re.IGNORECASE)


def _guarded_reads(root: ast.AST,
                   guards: dict[str, GuardDecl]) -> Iterator[
                       tuple[str, ast.AST]]:
    for sub in walk_point(root):
        if not isinstance(sub, ast.Attribute):
            continue
        if not isinstance(sub.ctx, ast.Load):
            continue
        attr = self_attr(sub)
        if attr is None:
            continue
        decl = guards.get(attr)
        if decl is not None and decl.mutable:
            yield attr, sub


@register
class UnguardedCounterRule(Rule):
    id = "unguarded-counter"
    severity = "error"
    description = ("stats()/health()/healthz-style read paths must "
                   "read mutable guarded-by attributes (counter dicts, "
                   "event lists) only with the declared lock held — "
                   "unlocked reads tear mid-update")

    def check_project(self, project: Project) -> Iterable[Violation]:
        model = model_for(project)
        for ctx in project:
            for classdef in classes(ctx.tree):
                guards = {
                    attr: decl
                    for attr, decl in
                    model.guards_for(classdef.name).items()
                    if decl.mutable}
                if not guards:
                    continue
                for func in methods(classdef):
                    if not READ_PATH_RE.search(func.name):
                        continue
                    if caller_holds_lock(func):
                        continue
                    yield from self._check_method(
                        ctx, model, classdef.name, func, guards)

    def _check_method(self, ctx, model, class_name, func,
                      guards) -> Iterator[Violation]:
        flow = model.flow(func)
        for held, nodes in flow.points():
            for root in nodes:
                for attr, anchor in _guarded_reads(root, guards):
                    decl = guards[attr]
                    if holds(held, decl.lock):
                        continue
                    yield self.violation(
                        ctx, anchor,
                        f"{class_name}.{func.name}() reads self.{attr} "
                        f"(mutable, guarded by {decl.lock}) outside "
                        f"the lock; snapshot it under the lock so the "
                        f"report can't tear mid-update")
