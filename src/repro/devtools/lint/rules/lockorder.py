"""lock-order — the cross-file lock-acquisition graph must be acyclic.

Origin: ``compact()`` acquires ``_reload_lock`` then, nested,
``_compaction_lock`` — the repo's one sanctioned lock nesting.  The
moment any other path takes the same two locks in the *reverse* order,
two threads can each hold one lock and wait forever on the other; the
bug only manifests under contention and is invisible to any per-file,
per-node check.

The dataflow already records every acquisition event together with the
locks held at that moment (``with`` entries and bare ``acquire()``
calls alike).  This rule folds those events, project-wide, into a
directed graph on terminal lock names — an edge A→B meaning "B was
acquired while A was held" — and flags every edge that participates in
a strongly-connected component of more than one lock: each such edge
is part of an acquisition cycle, i.e. a potential deadlock.  Two-lock
inversions and longer cycles fall out of the same machinery.

Also flagged: re-acquiring a lock already held when the project's lock
registry shows it was constructed *non-reentrant* (``Lock`` /
``Semaphore``) — guaranteed self-deadlock.  ``RLock`` and
``Condition`` (which wraps an RLock) re-entries stay quiet, as do
locks the registry never saw.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.devtools.lint.concurrency import model_for
from repro.devtools.lint.dataflow import terminal_name
from repro.devtools.lint.engine import FileContext, Project, Rule, \
    Violation, register
from repro.devtools.lint.rules import walk_functions


def _sccs(nodes: set[str],
          edges: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's strongly-connected components, iteratively."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[set[str]] = []
    counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        work: list[tuple[str, list[str]]] = [
            (root, sorted(edges.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            while successors:
                succ = successors.pop(0)
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result


@register
class LockOrderRule(Rule):
    id = "lock-order"
    severity = "error"
    description = ("nested lock acquisitions must follow one global "
                   "order: any cycle in the project-wide acquisition "
                   "graph (A held while taking B, B held while taking "
                   "A) is a potential deadlock; re-acquiring a "
                   "non-reentrant lock is flagged too")

    def check_project(self, project: Project) -> Iterable[Violation]:
        model = model_for(project)
        # edge (A, B): B acquired while A held; witnesses keep the
        # first anchor per (file, edge) for stable, deduped reports
        edges: dict[str, set[str]] = {}
        witnesses: dict[tuple[str, str, str],
                        tuple[FileContext, ast.AST, str]] = {}
        reacquires: list[tuple[FileContext, ast.AST, str, str]] = []
        for ctx in project:
            for func in walk_functions(ctx.tree):
                flow = model.flow(func)
                for event in flow.acquisitions:
                    taken = terminal_name(event.lock)
                    held_terms = {terminal_name(h) for h in event.held}
                    if taken in held_terms:
                        if not model.is_reentrant(taken):
                            reacquires.append(
                                (ctx, event.node, taken, func.name))
                        held_terms.discard(taken)
                    for held in held_terms:
                        edges.setdefault(held, set()).add(taken)
                        witnesses.setdefault(
                            (ctx.relpath, held, taken),
                            (ctx, event.node, func.name))

        nodes = set(edges)
        for targets in edges.values():
            nodes |= targets
        cyclic = [scc for scc in _sccs(nodes, edges) if len(scc) > 1]
        in_cycle: dict[str, set[str]] = {}
        for scc in cyclic:
            for member in scc:
                in_cycle[member] = scc

        for (path, held, taken), (ctx, node, func_name) in sorted(
                witnesses.items(),
                key=lambda item: (item[0][0], item[0][1], item[0][2])):
            scc = in_cycle.get(held)
            if scc is None or taken not in scc:
                continue
            members = ", ".join(sorted(scc))
            yield self.violation(
                ctx, node,
                f"{func_name}() acquires {taken} while holding {held}, "
                f"an edge in a lock-order cycle among {{{members}}}; "
                f"impose one global acquisition order (DESIGN.md §13)")

        seen_reacquire: set[tuple[str, str, str]] = set()
        for ctx, node, taken, func_name in reacquires:
            key = (ctx.relpath, taken, func_name)
            if key in seen_reacquire:
                continue
            seen_reacquire.add(key)
            yield self.violation(
                ctx, node,
                f"{func_name}() re-acquires {taken}, a non-reentrant "
                f"lock already held on every path here — guaranteed "
                f"self-deadlock; use an RLock or split the critical "
                f"section")
