"""Text and JSON reporters for lint results.

The text reporter is the human CI log view; the JSON reporter is the
machine contract (schema version pinned, violations carry rule / path /
line / col / severity / message) consumed by editor integrations and
asserted by ``tests/test_lint.py``.
"""

from __future__ import annotations

import json

from repro.devtools.lint.engine import LintResult

#: schema version of the JSON report
REPORT_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [violation.render() for violation in result.violations]
    if verbose:
        lines.extend(f"{v.render()}  (suppressed by noqa)"
                     for v in result.suppressed)
        lines.extend(f"{v.render()}  (baselined)"
                     for v in result.baselined)
    summary = (
        f"egeria-lint: {len(result.violations)} violation(s) in "
        f"{result.checked_files} file(s) "
        f"[{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined]")
    if result.violations:
        by_rule = ", ".join(f"{rule}={count}" for rule, count in
                            sorted(result.by_rule().items()))
        summary += f" — {by_rule}"
    lines.append(summary)
    return "\n".join(lines)


def report_to_dict(result: LintResult) -> dict:
    """The JSON report as a dict (see :data:`REPORT_VERSION`)."""
    return {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "violations": [v.to_dict() for v in result.violations],
        "summary": {
            "checked_files": result.checked_files,
            "violations": len(result.violations),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "by_rule": result.by_rule(),
            "rules": list(result.rules),
        },
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_to_dict(result), indent=1, ensure_ascii=False)
