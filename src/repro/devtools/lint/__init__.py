"""egeria-lint — AST-based invariant checker for the reproduction.

The resilience layer (PR 1) and the one-pass annotation pipeline
(PR 2) each introduced contracts that were, until this package,
enforced only by convention: every stage hooks a named fault point,
Stage II never re-tokenizes what the annotation artifact carries,
runtime invariants raise instead of ``assert``-ing, broad handlers on
the serving path record failures, and the persistence schema
round-trips every field.  Each of those conventions had already been
violated once by the time it was written down — *egeria-lint* turns
them into CI-time checks.

Usage (see ``tools/lint.py`` for the CLI)::

    from repro.devtools.lint import Linter, Baseline

    result = Linter(baseline=Baseline.load("tools/lint_baseline.json"))\\
        .lint_paths(["src"], root=".")
    print(render_text(result))

Suppression: ``# egeria: noqa[rule-id]`` on the offending line (with a
trailing reason).  Grandfathering: entries in the committed baseline
file, each carrying a ``justification``.
"""

from __future__ import annotations

from repro.devtools.lint.baseline import Baseline, BaselineEntry
from repro.devtools.lint.engine import (
    FileContext,
    LintResult,
    Linter,
    Project,
    Rule,
    Violation,
    default_rules,
    register,
    registered_rules,
)
from repro.devtools.lint.reporters import (
    render_json,
    render_text,
    report_to_dict,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "LintResult",
    "Linter",
    "Project",
    "Rule",
    "Violation",
    "default_rules",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "report_to_dict",
]
