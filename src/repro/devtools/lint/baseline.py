"""Committed baseline of grandfathered lint violations.

A baseline file lets a new rule land while the codebase still carries
known, *justified* violations: matched findings are reported separately
and do not fail the run, while anything new does.  Entries match on the
violation fingerprint — ``(rule, path, message)``, no line numbers — so
edits elsewhere in a file never invalidate the baseline.  Matching is
multiset-style: two identical grandfathered violations need two
entries, and fixing one of them makes the spare entry *stale* (surfaced
by :meth:`Baseline.stale_entries` so the file shrinks monotonically).

Every entry carries a ``justification`` string; ``tools/lint.py
--write-baseline`` stamps new entries with a TODO marker so an
unjustified grandfathering is visible in review.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.lint.engine import Violation

BASELINE_VERSION = 1

#: justification stamped on freshly written entries
TODO_JUSTIFICATION = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation."""

    rule: str
    path: str
    message: str
    justification: str = TODO_JUSTIFICATION

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path,
                "message": self.message,
                "justification": self.justification}


class Baseline:
    """A set of grandfathered violations, loaded from / saved to JSON."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    # -- matching -------------------------------------------------------

    def partition(
        self, violations: list[Violation]
    ) -> tuple[list[Violation], list[Violation]]:
        """Split *violations* into (new, baselined)."""
        budget = Counter(entry.fingerprint for entry in self.entries)
        new: list[Violation] = []
        matched: list[Violation] = []
        for violation in violations:
            fingerprint = violation.fingerprint()
            if budget.get(fingerprint, 0) > 0:
                budget[fingerprint] -= 1
                matched.append(violation)
            else:
                new.append(violation)
        return new, matched

    def stale_entries(
        self, violations: list[Violation]
    ) -> list[BaselineEntry]:
        """Entries no current violation matches (fixed → prune them)."""
        current = Counter(v.fingerprint() for v in violations)
        stale: list[BaselineEntry] = []
        for entry in self.entries:
            if current.get(entry.fingerprint, 0) > 0:
                current[entry.fingerprint] -= 1
            else:
                stale.append(entry)
        return stale

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load *path*; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        data = json.loads(file_path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}")
        entries = [
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                message=str(entry["message"]),
                justification=str(
                    entry.get("justification", TODO_JUSTIFICATION)),
            )
            for entry in data.get("entries", [])
        ]
        return cls(entries)

    @classmethod
    def from_violations(cls, violations: list[Violation],
                        previous: "Baseline | None" = None) -> "Baseline":
        """Baseline for the current findings, keeping any justification
        the *previous* baseline already recorded for a fingerprint."""
        known: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                known.setdefault(entry.fingerprint, entry.justification)
        entries = [
            BaselineEntry(
                rule=v.rule_id, path=v.path, message=v.message,
                justification=known.get(v.fingerprint(),
                                        TODO_JUSTIFICATION),
            )
            for v in sorted(violations,
                            key=lambda v: (v.path, v.rule_id, v.message))
        ]
        return cls(entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=1, ensure_ascii=False) + "\n",
            encoding="utf-8")
