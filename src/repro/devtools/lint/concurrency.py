"""Project-wide concurrency registries shared by the flow-aware rules.

Three cross-file harvests feed the concurrency rule family
(DESIGN.md §13), assembled once per lint pass and cached on the
:class:`~repro.devtools.lint.engine.Project`:

* **lock registry** — every ``threading.Lock()`` / ``RLock()`` /
  ``Condition()`` / ``Semaphore()`` construction, module-level or
  ``self.attr`` in an ``__init__``, keyed by terminal name.  It powers
  the ``is_lock`` predicate of the dataflow (so ``with self._gate:``
  counts as a lock region even though the name never says "lock") and
  records reentrancy, which the lock-order rule needs to tell an RLock
  re-entry from a self-deadlock.

* **guarded-by registry** — ``# egeria: guarded-by[self._lock]``
  pragmas on attribute initializations.  The declaration is the
  source-level contract ("writers of this attribute hold that lock");
  the lock-discipline and unguarded-counter rules check it against
  the dataflow facts.  Declarations are inherited by subclasses
  (matched through base-class names project-wide).

* **frozen registry** — classes that promise immutability after
  construction: every ``@dataclass(frozen=True)`` plus any class whose
  ``class`` line carries a ``# egeria: frozen`` pragma (for
  ``__slots__`` classes sealed by hand, like ``IndexSegment``).
  The frozen-state-mutation rule enforces the promise statically;
  ``IndexSegment.__setattr__`` enforces it dynamically.

The model also memoizes one :class:`FunctionFlow` per function so the
three rules that need dataflow share a single analysis pass per
function — the whole-tree budget is the ISSUE's <5s gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.devtools.lint.dataflow import (
    FunctionFlow,
    analyze_function,
    lockish_name,
)
from repro.devtools.lint.engine import FileContext, Project

#: threading constructors that create a lock-like object
LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                  "BoundedSemaphore"}

#: factories whose objects may be re-acquired by the holding thread
#: (Condition() wraps an RLock by default)
REENTRANT_FACTORIES = {"RLock", "Condition"}

#: method calls that mutate their receiver in place
MUTATOR_METHODS = {"append", "extend", "insert", "add", "update",
                   "setdefault", "pop", "popitem", "remove", "discard",
                   "clear", "move_to_end", "sort", "reverse"}

_GUARD_RE = re.compile(
    r"#\s*egeria:\s*guarded-by\[(?P<lock>[A-Za-z0-9_.]+)\]")
_FROZEN_RE = re.compile(r"#\s*egeria:\s*frozen\b")

#: value expressions that create a mutable container (whose reads can
#: tear without the lock — the unguarded-counter rule's scope)
_MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                  ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "defaultdict", "Counter",
                         "OrderedDict", "deque"}


#: methods where attribute assignment is construction, not mutation
CONSTRUCTOR_METHODS = {"__init__", "__post_init__", "__new__",
                       "__setstate__"}

#: suffix marking helpers whose *caller* holds the lock (the existing
#: ``SnapshotStore._gc_locked`` convention) — the intraprocedural
#: analysis trusts the name instead of inlining the caller
LOCKED_SUFFIX = "_locked"


def holds(held: frozenset[str] | None, lock: str) -> bool:
    """Does the dataflow fact *held* satisfy declared lock *lock*?

    ``TOP`` (unreachable code) satisfies everything.  Matching is by
    exact dotted name first, then by terminal name — a declaration
    written ``self._lock`` is satisfied by ``cls._lock`` or a
    module-level ``_LOCK`` alias of the same terminal spelling.
    """
    if held is None:
        return True
    if lock in held:
        return True
    term = lock.rsplit(".", 1)[-1]
    return any(h.rsplit(".", 1)[-1] == term for h in held)


def caller_holds_lock(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return func.name.endswith(LOCKED_SUFFIX)


def walk_point(root: ast.AST):
    """``ast.walk`` that never descends into a nested function, class
    or lambda — their bodies run at *call* time, under whatever locks
    the caller then holds, so the enclosing point's facts don't apply."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class GuardDecl:
    """One ``guarded-by`` declaration: attr *attr* of class
    *class_name* is protected by lock expression *lock*."""

    class_name: str
    attr: str
    lock: str            #: as written, e.g. ``self._answer_lock``
    mutable: bool        #: initializer builds a mutable container
    path: str
    line: int


def classes(tree: ast.AST) -> list[ast.ClassDef]:
    return [node for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)]


def methods(classdef: ast.ClassDef) -> list[ast.FunctionDef
                                            | ast.AsyncFunctionDef]:
    return [node for node in classdef.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"`` (any expression context)."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _call_factory(value: ast.AST) -> str | None:
    """``threading.RLock()`` / ``RLock()`` → ``"RLock"``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name if name in LOCK_FACTORIES else None


def _is_mutable_value(value: ast.AST | None) -> bool:
    if value is None:
        return False
    if isinstance(value, _MUTABLE_NODES):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _is_frozen_dataclass(classdef: ast.ClassDef) -> bool:
    for decorator in classdef.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" and \
                    isinstance(keyword.value, ast.Constant) and \
                    keyword.value.value is True:
                return True
    return False


class ConcurrencyModel:
    """The harvested registries plus a per-function dataflow cache."""

    def __init__(self, project: Project) -> None:
        #: terminal lock name → factory kinds it was built with
        self.lock_kinds: dict[str, set[str]] = {}
        #: class name → {attr → GuardDecl}
        self.guards: dict[str, dict[str, GuardDecl]] = {}
        #: class name → list of base-class terminal names
        self.bases: dict[str, list[str]] = {}
        #: class names promising immutability after construction
        self.frozen: set[str] = set()
        #: class name → {attr → frozen class it always holds}
        self.frozen_attrs: dict[str, dict[str, str]] = {}
        self._flows: dict[int, FunctionFlow] = {}
        for ctx in project:
            self._harvest_file(ctx)
        # attrs only ever assigned FrozenCls(...) — second pass so the
        # frozen set is complete before inference consults it
        for ctx in project:
            self._infer_frozen_attrs(ctx)

    # -- harvesting -----------------------------------------------------

    def _harvest_file(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            for target in _assign_targets(node):
                if isinstance(target, ast.Name):
                    kind = _call_factory(getattr(node, "value", None))
                    if kind is not None:
                        self.lock_kinds.setdefault(
                            target.id, set()).add(kind)
        for classdef in classes(ctx.tree):
            self.bases[classdef.name] = [
                base.attr if isinstance(base, ast.Attribute) else base.id
                for base in classdef.bases
                if isinstance(base, (ast.Name, ast.Attribute))]
            if _is_frozen_dataclass(classdef) or _FROZEN_RE.search(
                    ctx.lines[classdef.lineno - 1]):
                self.frozen.add(classdef.name)
            for func in methods(classdef):
                for stmt in ast.walk(func):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    for target in _assign_targets(stmt):
                        attr = self_attr(target)
                        if attr is None:
                            continue
                        value = stmt.value
                        kind = _call_factory(value)
                        if kind is not None:
                            self.lock_kinds.setdefault(
                                attr, set()).add(kind)
                        self._harvest_guard(ctx, classdef, stmt, attr,
                                            value)

    def _harvest_guard(self, ctx: FileContext, classdef: ast.ClassDef,
                       stmt: ast.stmt, attr: str,
                       value: ast.AST | None) -> None:
        end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        for lineno in range(stmt.lineno, end + 1):
            match = _GUARD_RE.search(ctx.lines[lineno - 1])
            if match:
                break
        else:
            # also accept the pragma on a pure-comment line directly
            # above the assignment (long initializers)
            above = ctx.lines[stmt.lineno - 2].strip() \
                if stmt.lineno >= 2 else ""
            match = _GUARD_RE.search(above) \
                if above.startswith("#") else None
            if match is None:
                return
        decl = GuardDecl(
            class_name=classdef.name, attr=attr,
            lock=match.group("lock"),
            mutable=_is_mutable_value(value),
            path=ctx.relpath, line=stmt.lineno)
        self.guards.setdefault(classdef.name, {})[attr] = decl

    def _infer_frozen_attrs(self, ctx: FileContext) -> None:
        for classdef in classes(ctx.tree):
            per_attr: dict[str, set[str | None]] = {}
            for func in methods(classdef):
                for stmt in ast.walk(func):
                    if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        continue
                    for target in _assign_targets(stmt):
                        attr = self_attr(target)
                        if attr is None:
                            continue
                        per_attr.setdefault(attr, set()).add(
                            self._frozen_constructor(stmt.value))
            inferred = {
                attr: sources.pop()
                for attr, sources in per_attr.items()
                if len(sources) == 1 and None not in sources}
            if inferred:
                self.frozen_attrs.setdefault(
                    classdef.name, {}).update(inferred)

    def _frozen_constructor(self, value: ast.AST | None) -> str | None:
        """``_IndexState(...)`` → ``"_IndexState"`` if frozen."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        return name if name in self.frozen else None

    # -- queries --------------------------------------------------------

    def is_lock(self, dotted: str) -> bool:
        return dotted.rsplit(".", 1)[-1] in self.lock_kinds \
            or lockish_name(dotted)

    def is_reentrant(self, terminal: str) -> bool:
        """False only when the name was harvested and every factory it
        was built with is non-reentrant; unharvested names stay safe."""
        kinds = self.lock_kinds.get(terminal)
        if not kinds:
            return True
        return bool(kinds & REENTRANT_FACTORIES)

    def guards_for(self, class_name: str) -> dict[str, GuardDecl]:
        """Declarations for *class_name*, base classes included
        (nearest declaration wins)."""
        merged: dict[str, GuardDecl] = {}
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            for attr, decl in self.guards.get(name, {}).items():
                merged.setdefault(attr, decl)
            queue.extend(self.bases.get(name, []))
        return merged

    def flow(self, func: ast.FunctionDef
             | ast.AsyncFunctionDef) -> FunctionFlow:
        cached = self._flows.get(id(func))
        if cached is None:
            cached = analyze_function(func, self.is_lock)
            self._flows[id(func)] = cached
        return cached


def model_for(project: Project) -> ConcurrencyModel:
    """The (cached) concurrency model of this lint pass."""
    model = getattr(project, "_concurrency_model", None)
    if model is None:
        model = ConcurrencyModel(project)
        project._concurrency_model = model
    return model
