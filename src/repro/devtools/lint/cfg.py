"""Intraprocedural control-flow graphs over ``ast`` function bodies.

The flow-aware concurrency rules (DESIGN.md §13) need to know, at each
program point, which locks are *definitely* held — a property that a
per-node AST visitor cannot answer the moment control flow branches.
This module lowers one function body into a lightweight CFG the
held-locks dataflow of :mod:`repro.devtools.lint.dataflow` runs over.

Shape
-----
A :class:`CFG` is a list of :class:`Block`\\ s connected by successor
edges.  Each block holds an ordered list of :class:`Step`\\ s — atomic
program points.  Most steps are plain statements (``kind="stmt"``);
``with`` statements are desugared into explicit ``with-enter`` /
``with-exit`` steps around their body so a lock acquired by
``with self._lock:`` is visibly scoped to exactly the statements the
body executes:

* an early ``return`` inside the body jumps straight to the exit
  block, *before* the ``with-exit`` step — statements after the
  ``with`` are only reachable through the normal fall-through path
  where the release fires;
* ``try``/``finally`` routes the pre-``try`` state into the
  ``finally`` block too (an exception may fire before any ``try``
  statement ran), so a ``release()`` in a ``finally`` is met with
  every state it can actually observe.

Approximations (deliberate, documented):

* ``raise`` edges go to the function exit, not to enclosing handlers —
  a handler is instead seeded from both the state *entering* its
  ``try`` block and the state at the end of it, the meet of which
  under-approximates held locks (safe for a must-hold analysis);
* loops conservatively get a head→after edge even for ``while True``;
* nested function/class definitions are single opaque statements
  (the analysis is intraprocedural; rules visit nested functions
  separately).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: step kinds
STMT = "stmt"
WITH_ENTER = "with-enter"
WITH_EXIT = "with-exit"

#: compound statements whose bodies become separate blocks; their step
#: covers only the header expression(s) listed by :func:`header_exprs`
_COMPOUND = (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With,
             ast.AsyncWith, ast.Try, ast.TryStar, ast.Match)


@dataclass
class Step:
    """One atomic program point inside a block."""

    node: ast.AST              #: anchoring AST node (linenos, identity)
    kind: str = STMT           #: STMT, WITH_ENTER or WITH_EXIT
    context: ast.expr | None = None  #: with-enter/exit: the ctx manager


@dataclass
class Block:
    """A straight-line run of steps with a set of successor blocks."""

    index: int
    steps: list[Step] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._new_block().index
        self.exit = self._new_block().index

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def predecessors(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {b.index: set() for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].add(block.index)
        return preds


def header_exprs(node: ast.stmt) -> list[ast.AST]:
    """The sub-expressions a compound statement's own step evaluates
    (its body statements are separate steps in separate blocks)."""
    if isinstance(node, (ast.If, ast.While)):
        return [node.test]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter, node.target]
    if isinstance(node, ast.Match):
        return [node.subject]
    return []


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower *func*'s body into a :class:`CFG`."""
    return _Builder(func).build()


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)
        self.current: Block | None = self.cfg.blocks[self.cfg.entry]
        #: (continue target, break target) per enclosing loop
        self.loops: list[tuple[int, int]] = []

    # -- plumbing -------------------------------------------------------

    def build(self) -> CFG:
        self._lower_body(self.cfg.func.body)
        if self.current is not None:
            self._edge(self.current, self.cfg.exit)
        return self.cfg

    def _edge(self, src: Block, dst: int) -> None:
        src.successors.add(dst)

    def _block(self) -> Block:
        return self.cfg._new_block()

    def _emit(self, step: Step) -> None:
        if self.current is None:
            # unreachable code still gets a (predecessor-less) block so
            # every statement owns a program point
            self.current = self._block()
        self.current.steps.append(step)

    def _join(self, ends: list[Block | None]) -> None:
        """Continue in a fresh block fed by every non-dead *end*."""
        live = [end for end in ends if end is not None]
        if not live:
            self.current = None
            return
        after = self._block()
        for end in live:
            self._edge(end, after.index)
        self.current = after

    # -- statement lowering ---------------------------------------------

    def _lower_body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._lower(stmt)

    def _lower(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._lower_if(node)
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            self._lower_loop(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._lower_with(node)
        elif isinstance(node, (ast.Try, ast.TryStar)):
            self._lower_try(node)
        elif isinstance(node, ast.Match):
            self._lower_match(node)
        elif isinstance(node, (ast.Return, ast.Raise)):
            self._emit(Step(node))
            if self.current is not None:
                self._edge(self.current, self.cfg.exit)
            self.current = None
        elif isinstance(node, ast.Break):
            self._emit(Step(node))
            if self.loops and self.current is not None:
                self._edge(self.current, self.loops[-1][1])
            self.current = None
        elif isinstance(node, ast.Continue):
            self._emit(Step(node))
            if self.loops and self.current is not None:
                self._edge(self.current, self.loops[-1][0])
            self.current = None
        else:
            # simple statements — including nested function/class
            # definitions, which stay opaque single steps
            self._emit(Step(node))

    def _lower_if(self, node: ast.If) -> None:
        self._emit(Step(node))
        cond = self.current
        assert_block = self._block()
        self._edge(cond, assert_block.index)
        self.current = assert_block
        self._lower_body(node.body)
        then_end = self.current
        if node.orelse:
            else_block = self._block()
            self._edge(cond, else_block.index)
            self.current = else_block
            self._lower_body(node.orelse)
            self._join([then_end, self.current])
        else:
            self._join([then_end, cond])

    def _lower_loop(self, node: ast.While | ast.For | ast.AsyncFor) -> None:
        head = self._block()
        if self.current is not None:
            self._edge(self.current, head.index)
        self.current = head
        self._emit(Step(node))
        head = self.current        # (still the head; _emit never splits)
        body = self._block()
        after = self._block()
        self._edge(head, body.index)
        self.loops.append((head.index, after.index))
        self.current = body
        self._lower_body(node.body)
        if self.current is not None:
            self._edge(self.current, head.index)
        self.loops.pop()
        if node.orelse:
            else_block = self._block()
            self._edge(head, else_block.index)
            self.current = else_block
            self._lower_body(node.orelse)
            if self.current is not None:
                self._edge(self.current, after.index)
        else:
            # conservative: even `while True` gets a fall-through edge
            self._edge(head, after.index)
        self.current = after

    def _lower_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            self._emit(Step(item.context_expr, WITH_ENTER,
                            context=item.context_expr))
        self._lower_body(node.body)
        if self.current is not None:
            # only the normal fall-through path releases here; early
            # exits left the region via their own edges already
            for item in reversed(node.items):
                self._emit(Step(node, WITH_EXIT,
                                context=item.context_expr))

    def _lower_try(self, node: ast.Try | ast.TryStar) -> None:
        if self.current is None:
            self.current = self._block()
        pre = self.current
        try_entry = self._block()
        self._edge(pre, try_entry.index)
        self.current = try_entry
        self._lower_body(node.body)
        try_end = self.current
        handler_ends: list[Block | None] = []
        for handler in node.handlers:
            handler_block = self._block()
            # an exception may fire before any try statement ran, or
            # after all of them — seed the handler from both states
            self._edge(try_entry, handler_block.index)
            if try_end is not None:
                self._edge(try_end, handler_block.index)
            self.current = handler_block
            self._lower_body(handler.body)
            handler_ends.append(self.current)
        else_end = try_end
        if node.orelse and try_end is not None:
            self.current = try_end
            self._lower_body(node.orelse)
            else_end = self.current
        if node.finalbody:
            final_block = self._block()
            self._edge(try_entry, final_block.index)  # uncaught path
            for end in [else_end, *handler_ends]:
                if end is not None:
                    self._edge(end, final_block.index)
            self.current = final_block
            self._lower_body(node.finalbody)
            self._join([self.current])
        else:
            self._join([else_end, *handler_ends])

    def _lower_match(self, node: ast.Match) -> None:
        self._emit(Step(node))
        head = self.current
        ends: list[Block | None] = [head]   # no case may match
        for case in node.cases:
            case_block = self._block()
            self._edge(head, case_block.index)
            self.current = case_block
            self._lower_body(case.body)
            ends.append(self.current)
        self._join(ends)
