"""Reaching held-locks dataflow over the lint CFG.

A forward *must*-analysis: the fact at a program point is the set of
lock expressions that are **definitely held** on every path reaching
it.  The lattice is sets of dotted lock names ordered by ⊇, the meet
at join points is set intersection (a lock only counts as held if it
is held on *all* incoming paths), and ``TOP`` (represented as
``None``) is the state of unreachable code — the neutral element of
the meet, and treated by the rules as "assume anything", so dead code
never raises a false alarm.

Transfer functions:

* a ``with-enter`` step whose context manager is a lock expression
  adds it (and records an *acquisition event* carrying the locks held
  at that moment — the raw material of the lock-order graph);
* the matching ``with-exit`` removes it;
* a ``lock.acquire()`` call adds, ``lock.release()`` removes — which
  is what makes ``acquire()``/``try:``/``finally: release()`` regions
  track correctly through branches and early returns.

Locks are identified purely syntactically, by the dotted source
expression (``self._lock``, ``store._lock``, ``_REGISTRY_LOCK``);
aliasing through a local (``lock = self._lock; with lock:``) is out of
scope and simply tracked under the alias's own name.  Which dotted
names *are* locks is the caller's business — rules pass a predicate
built from the project-wide lock registry of
:mod:`repro.devtools.lint.concurrency` plus a conservative
name-pattern fallback.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.devtools.lint.cfg import (
    STMT,
    WITH_ENTER,
    WITH_EXIT,
    CFG,
    Step,
    build_cfg,
    header_exprs,
)

#: fallback predicate: a terminal name that *looks* like a lock
_LOCKISH_RE = re.compile(r"lock|mutex|semaphore", re.IGNORECASE)

#: the meet identity / state of unreachable code
TOP = None


def dotted_name(expr: ast.AST) -> str | None:
    """``self._lock`` → ``"self._lock"``; non-name chains → ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(dotted: str) -> str:
    """The final segment of a dotted name (``self._lock`` → ``_lock``)."""
    return dotted.rsplit(".", 1)[-1]


def lockish_name(dotted: str) -> bool:
    """Name-pattern fallback for code outside the harvested registry."""
    return _LOCKISH_RE.search(terminal_name(dotted)) is not None


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition event (a ``with`` entry or ``acquire()``)."""

    lock: str                    #: dotted lock expression as written
    held: frozenset[str]         #: locks already held at this point
    node: ast.AST                #: anchor for line/col reporting


class FunctionFlow:
    """Held-locks facts for one analyzed function."""

    def __init__(self, func: ast.AST, cfg: CFG) -> None:
        self.func = func
        self.cfg = cfg
        #: id(stmt node) → locks definitely held *before* it (or TOP)
        self._before: dict[int, frozenset[str] | None] = {}
        self.acquisitions: list[Acquisition] = []

    def held_before(self, node: ast.AST) -> frozenset[str] | None:
        """Locks definitely held entering *node*'s program point.

        ``TOP`` (``None``) means the point was never reached by the
        analysis — callers should treat it as "anything may be held".
        """
        return self._before.get(id(node), TOP)

    def points(self) -> Iterator[tuple[frozenset[str], list[ast.AST]]]:
        """Every reachable program point as ``(held, nodes)``.

        ``nodes`` are the AST nodes evaluated *at* that point: a whole
        simple statement (safe to ``ast.walk`` — simple statements
        contain no nested statements), a compound statement's header
        expressions, or a ``with`` item's context-manager expression.
        Unreachable points (state ``TOP``) are skipped.
        """
        for block in self.cfg.blocks:
            for step in block.steps:
                held = self._before.get(id(step.node), TOP)
                if held is TOP:
                    continue
                if step.kind == WITH_ENTER:
                    yield held, [step.context]
                elif step.kind == STMT:
                    headers = header_exprs(step.node)
                    if headers:
                        yield held, headers
                    elif not isinstance(step.node, (
                            ast.With, ast.AsyncWith, ast.Try,
                            ast.TryStar)):
                        yield held, [step.node]


def analyze_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    is_lock: Callable[[str], bool] = lockish_name,
) -> FunctionFlow:
    """Run the held-locks analysis over *func*.

    *is_lock* decides whether a dotted context-manager / receiver
    expression participates in the lock lattice at all; everything
    else (``with open(...)``, ``with self.freeze()``) is ignored.
    """
    cfg = build_cfg(func)
    flow = FunctionFlow(func, cfg)
    preds = cfg.predecessors()
    n = len(cfg.blocks)
    in_state: list[frozenset[str] | None] = [TOP] * n
    out_state: list[frozenset[str] | None] = [TOP] * n
    in_state[cfg.entry] = frozenset()

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            state = in_state[block.index]
            if block.index != cfg.entry:
                state = TOP
                for pred in preds[block.index]:
                    pred_out = out_state[pred]
                    if pred_out is TOP:
                        continue
                    state = pred_out if state is TOP \
                        else (state & pred_out)
                if in_state[block.index] != state:
                    in_state[block.index] = state
                    changed = True
            new_out = _transfer(block.steps, state, is_lock, record=None)
            if out_state[block.index] != new_out:
                out_state[block.index] = new_out
                changed = True

    # facts stable — one recording pass fills per-step states/events
    for block in cfg.blocks:
        _transfer(block.steps, in_state[block.index], is_lock,
                  record=flow)
    return flow


def _transfer(
    steps: list[Step],
    state: frozenset[str] | None,
    is_lock: Callable[[str], bool],
    record: FunctionFlow | None,
) -> frozenset[str] | None:
    if state is TOP:
        return TOP
    for step in steps:
        if record is not None:
            record._before[id(step.node)] = state
        if step.kind == WITH_ENTER:
            lock = _lock_expr(step.context, is_lock)
            if lock is not None:
                if record is not None:
                    record.acquisitions.append(
                        Acquisition(lock, state, step.context))
                state = state | {lock}
        elif step.kind == WITH_EXIT:
            lock = _lock_expr(step.context, is_lock)
            if lock is not None:
                state = state - {lock}
        else:
            state = _apply_calls(step, state, is_lock, record)
    return state


def _apply_calls(
    step: Step,
    state: frozenset[str],
    is_lock: Callable[[str], bool],
    record: FunctionFlow | None,
) -> frozenset[str]:
    """Fold ``x.acquire()`` / ``x.release()`` calls of one statement."""
    scan = header_exprs(step.node) or [step.node]
    if isinstance(step.node, (ast.With, ast.AsyncWith, ast.Try,
                              ast.TryStar)):
        return state
    for root in scan:
        for node in ast.walk(root):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in ("acquire", "release"):
                continue
            lock = _lock_expr(node.func.value, is_lock)
            if lock is None:
                continue
            if node.func.attr == "acquire":
                if record is not None:
                    record.acquisitions.append(
                        Acquisition(lock, state, node))
                state = state | {lock}
            else:
                state = state - {lock}
    return state


def _lock_expr(expr: ast.AST | None,
               is_lock: Callable[[str], bool]) -> str | None:
    if expr is None:
        return None
    dotted = dotted_name(expr)
    if dotted is None or not is_lock(dotted):
        return None
    return dotted
