"""The egeria-lint engine: file contexts, rule registry, runner.

The checker is deliberately self-contained (stdlib ``ast`` only) and
two-phase:

1. every target file is parsed once into a :class:`FileContext`
   (source, AST, derived module name, ``noqa`` suppressions);
2. each registered :class:`Rule` runs — per-file rules see one context
   at a time, project rules see the whole :class:`Project`, which is
   what lets cross-module invariants (fault-point coverage,
   persistence schema sync) be checked statically.

Violations are value objects with a stable *fingerprint* —
``(rule id, path, message)``, deliberately line-number-free so a
committed baseline survives unrelated edits above a grandfathered
violation.

Suppressions: a ``# egeria: noqa[rule-id]`` trailing comment silences
the named rule(s) on that line; bare ``# egeria: noqa`` silences every
rule on the line.  A ``# egeria: module=<dotted.name>`` pragma near the
top of a file overrides the module name derived from its path — test
fixtures use it to impersonate scoped modules.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: the severities a rule may declare (ordering = report ordering)
SEVERITIES = ("error", "warning")

_NOQA_RE = re.compile(
    r"#\s*egeria:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?")
_MODULE_PRAGMA_RE = re.compile(
    r"#\s*egeria:\s*module=(?P<module>[A-Za-z0-9_.]+)")
#: lines scanned for the module pragma
_PRAGMA_WINDOW = 10

#: sentinel: a blanket ``# egeria: noqa`` (suppresses every rule)
NOQA_ALL = "*"


@dataclass(frozen=True)
class Violation:
    """One rule hit at one location."""

    rule_id: str
    path: str           # project-relative, forward slashes
    line: int
    col: int
    message: str
    severity: str = "error"

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity}[{self.rule_id}] {self.message}")


class FileContext:
    """One parsed target file, shared by every rule."""

    def __init__(self, path: Path, source: str,
                 root: Path | None = None) -> None:
        self.path = Path(path)
        self.relpath = _relative_posix(self.path, root)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.module = self._derive_module()
        self.noqa = self._collect_noqa()

    # -- derivation -----------------------------------------------------

    def _derive_module(self) -> str:
        pragma = self._module_pragma()
        if pragma is not None:
            return pragma
        parts = list(Path(self.relpath).parts)
        if "src" in parts:
            parts = parts[len(parts) - parts[::-1].index("src"):]
        if not parts:
            return self.path.stem
        parts[-1] = Path(parts[-1]).stem
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else self.path.stem

    def _module_pragma(self) -> str | None:
        for line in self.lines[:_PRAGMA_WINDOW]:
            match = _MODULE_PRAGMA_RE.search(line)
            if match:
                return match.group("module")
        return None

    def _collect_noqa(self) -> dict[int, set[str]]:
        suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                suppressions[lineno] = {NOQA_ALL}
            else:
                suppressions[lineno] = {
                    r.strip() for r in rules.split(",") if r.strip()}
        return suppressions

    # -- queries --------------------------------------------------------

    def is_suppressed(self, violation: Violation) -> bool:
        rules = self.noqa.get(violation.line)
        if not rules:
            return False
        return NOQA_ALL in rules or violation.rule_id in rules

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


class Project:
    """Every :class:`FileContext` of one lint run, module-addressable."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self._by_module: dict[str, FileContext] = {}
        for ctx in self.files:
            self._by_module.setdefault(ctx.module, ctx)

    def module(self, name: str) -> FileContext | None:
        return self._by_module.get(name)

    def __iter__(self) -> Iterator[FileContext]:
        return iter(self.files)


class Rule:
    """Base class: one named invariant with a severity.

    Subclasses override :meth:`check_file` (runs once per file) and/or
    :meth:`check_project` (runs once per lint pass with cross-file
    visibility).  Register with :func:`register` so the CLI and the
    default runner pick the rule up.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Violation]:
        return ()

    def check_project(self, project: Project) -> Iterable[Violation]:
        return ()

    # -- helper ---------------------------------------------------------

    def violation(self, ctx: FileContext, node: ast.AST | int,
                  message: str) -> Violation:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Violation(rule_id=self.id, path=ctx.relpath, line=line,
                         col=col, message=message, severity=self.severity)


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator: add *rule_class* to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.severity not in SEVERITIES:
        raise ValueError(
            f"{rule_class.__name__}: unknown severity "
            f"{rule_class.severity!r} (expected one of {SEVERITIES})")
    existing = _REGISTRY.get(rule_class.id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """Registered rule classes (importing the rules package as a side
    effect, so the built-in rules self-register)."""
    import repro.devtools.lint.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def default_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instances of the registered rules, sorted by id.

    ``select`` restricts to the named rule ids (unknown ids raise —
    a typo in ``--select`` must not silently lint nothing).
    """
    registry = registered_rules()
    if select is not None:
        wanted = list(select)
        unknown = [rule_id for rule_id in wanted if rule_id not in registry]
        if unknown:
            raise KeyError(
                f"unknown rule ids {unknown}; known: {sorted(registry)}")
        return [registry[rule_id]() for rule_id in sorted(set(wanted))]
    return [cls() for _, cls in sorted(registry.items())]


@dataclass
class LintResult:
    """Outcome of one lint pass, partitioned for reporting.

    ``violations`` are the live findings (exit code 1); ``suppressed``
    were silenced by ``noqa`` comments; ``baselined`` matched the
    committed baseline; ``broken_files`` could not be parsed (each also
    yields a synthetic ``syntax-error`` violation).
    """

    violations: list[Violation]
    suppressed: list[Violation]
    baselined: list[Violation]
    checked_files: int
    rules: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


class Linter:
    """Runs a rule set over paths, applying noqa and baseline filters."""

    def __init__(self, rules: Sequence[Rule] | None = None,
                 baseline=None) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.baseline = baseline

    def lint_paths(self, paths: Sequence[str | Path],
                   root: str | Path | None = None) -> LintResult:
        root_path = Path(root) if root is not None else None
        contexts: list[FileContext] = []
        violations: list[Violation] = []
        checked = 0
        for path in _iter_python_files(paths):
            checked += 1
            source = path.read_text(encoding="utf-8")
            try:
                contexts.append(FileContext(path, source, root=root_path))
            except SyntaxError as error:
                violations.append(Violation(
                    rule_id="syntax-error",
                    path=_relative_posix(path, root_path),
                    line=error.lineno or 1, col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                    severity="error"))
        project = Project(contexts)
        for rule in self.rules:
            for ctx in contexts:
                violations.extend(rule.check_file(ctx))
            violations.extend(rule.check_project(project))
        return self._partition(project, violations, checked)

    def _partition(self, project: Project, found: list[Violation],
                   checked: int) -> LintResult:
        by_path = {ctx.relpath: ctx for ctx in project}
        live: list[Violation] = []
        suppressed: list[Violation] = []
        for violation in sorted(
                found, key=lambda v: (v.path, v.line, v.col, v.rule_id)):
            ctx = by_path.get(violation.path)
            if ctx is not None and ctx.is_suppressed(violation):
                suppressed.append(violation)
            else:
                live.append(violation)
        baselined: list[Violation] = []
        if self.baseline is not None:
            live, baselined = self.baseline.partition(live)
        return LintResult(violations=live, suppressed=suppressed,
                          baselined=baselined, checked_files=checked,
                          rules=[rule.id for rule in self.rules])


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            candidates: Iterable[Path] = sorted(entry_path.rglob("*.py"))
        else:
            candidates = [entry_path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def _relative_posix(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()
