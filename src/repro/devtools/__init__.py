"""Developer-facing tooling that ships with the reproduction.

Unlike the library packages, nothing under ``repro.devtools`` runs at
serving or build time — these are the tools that keep the codebase
honest:

* :mod:`repro.devtools.lint` — *egeria-lint*, the AST-based invariant
  checker that enforces the pipeline, resilience, and persistence
  contracts at CI time (``python tools/lint.py``).
"""
