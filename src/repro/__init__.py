"""Egeria — automatic synthesis of HPC advising tools (SC'17 reproduction).

This package reimplements, from scratch, the full system described in

    Hui Guan, Xipeng Shen, Hamid Krim.
    "Egeria: A Framework for Automatic Synthesis of HPC Advising Tools
    through Multi-Layered Natural Language Processing." SC'17.

including every substrate the paper depends on (tokenization, stemming,
lemmatization, part-of-speech tagging, dependency parsing, semantic role
labeling, TF-IDF/VSM retrieval, HTML document loading, NVVP-style profiler
reports) and its evaluation harness (baselines, metrics, rater simulation,
user-study simulation).

The top-level API re-exports the pieces most users need:

>>> from repro import Egeria, Document
>>> doc = Document.from_sentences(
...     ["Use shared memory to reduce global memory traffic."])
>>> advisor = Egeria().build_advisor(doc)
>>> answer = advisor.query("how to reduce memory traffic")

Exports are resolved lazily (PEP 562) so that low-level substrates can
be imported without pulling in the whole stack.
"""

from __future__ import annotations

__version__ = "1.0.0"

_EXPORTS = {
    "Egeria": ("repro.core.egeria", "Egeria"),
    "AdvisingTool": ("repro.core.advisor", "AdvisingTool"),
    "Answer": ("repro.core.advisor", "Answer"),
    "AdvisingSentenceRecognizer": ("repro.core.recognizer",
                                   "AdvisingSentenceRecognizer"),
    "KnowledgeRecommender": ("repro.core.recommender",
                             "KnowledgeRecommender"),
    "Document": ("repro.docs.document", "Document"),
    "Section": ("repro.docs.document", "Section"),
    "Sentence": ("repro.docs.document", "Sentence"),
    "FaultPlan": ("repro.resilience.faults", "FaultPlan"),
    "DegradationEvent": ("repro.resilience.degrade", "DegradationEvent"),
    "inject_faults": ("repro.resilience.faults", "inject"),
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(__all__)
