"""Purpose-clause (AM-PNC) detection.

Selector 5 of Egeria fires on sentences whose *purpose* argument
contains one of the ``KEY_PREDICATES`` (paper Table 1, category VI;
e.g. "The first step in maximizing overall memory throughput ... is
**to minimize data transfers with low bandwidth**").

A clause is a purpose argument when it is:

* an infinitival adverbial clause (``advcl`` over a ``to``-infinitive):
  "pad the data **to avoid bank conflicts**";
* the infinitival complement of a copula (``xcomp`` of *be*):
  "the first step is **to minimize data transfers**" (paper Fig. 3
  labels exactly this AM-PNC);
* a fronted infinitive: "**To obtain best performance**, minimize
  divergent warps";
* an explicit purpose idiom: "in order to", "so as to",
  "for the purpose of", "with the goal of";
* a ``for`` + gerund adjunct: "**for maximizing** throughput".

Each detected clause carries its predicate (the infinitive/gerund
head), the anchor verb it modifies, and its token span.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parsing.graph import DependencyGraph, Token
from repro.tagging.tagset import VERB_TAGS

_PURPOSE_IDIOMS: tuple[tuple[str, ...], ...] = (
    ("in", "order", "to"),
    ("so", "as", "to"),
    ("for", "the", "purpose", "of"),
    ("with", "the", "goal", "of"),
    ("with", "the", "aim", "of"),
)


@dataclass(frozen=True)
class PurposeClause:
    """A detected AM-PNC argument."""

    predicate: Token        # head verb of the purpose clause
    anchor: Token | None    # the verb the purpose modifies (None: fronted)
    start: int              # span start (token index, inclusive)
    end: int                # span end (token index, inclusive)

    def text(self, graph: DependencyGraph) -> str:
        return " ".join(
            t.text for t in graph.tokens[self.start: self.end + 1])


def find_purpose_clauses(graph: DependencyGraph) -> list[PurposeClause]:
    """All purpose clauses in a parsed sentence."""
    clauses: list[PurposeClause] = []
    seen: set[int] = set()

    def add(pred_index: int, anchor: Token | None) -> None:
        if pred_index in seen:
            return
        seen.add(pred_index)
        start, end = _clause_span(graph, pred_index)
        clauses.append(
            PurposeClause(graph.tokens[pred_index], anchor, start, end))

    # 1. advcl infinitives (to-infinitive adverbial clauses)
    for dep in graph.relations("advcl"):
        if _is_infinitive(graph, dep.dependent):
            add(dep.dependent, graph.tokens[dep.governor])

    # 2. xcomp of a copula ("is to minimize ...")
    for dep in graph.relations("xcomp"):
        governor = graph.tokens[dep.governor]
        if governor.lemma == "be" and _is_infinitive(graph, dep.dependent):
            add(dep.dependent, governor)

    # 3. fronted infinitive before the root clause
    root = graph.root
    if root is not None:
        for i, token in enumerate(graph.tokens):
            if i >= root.index:
                break
            if token.tag == "TO" and i + 1 < len(graph.tokens):
                j = i + 1
                while j < len(graph.tokens) and graph.tokens[j].tag in ("RB",):
                    j += 1
                if j < len(graph.tokens) and graph.tokens[j].tag in VERB_TAGS \
                        and j < root.index and j not in seen \
                        and _comma_before(graph, root.index, j):
                    add(j, root)
            # only scan the pre-root region
    # 4. explicit idioms ("in order to VB", "so as to VB", ...)
    lowers = [t.lower for t in graph.tokens]
    for idiom in _PURPOSE_IDIOMS:
        for i in range(len(lowers) - len(idiom)):
            if tuple(lowers[i: i + len(idiom)]) == idiom:
                j = i + len(idiom)
                while j < len(graph.tokens) and graph.tokens[j].tag in ("RB",):
                    j += 1
                if j < len(graph.tokens) and (
                        graph.tokens[j].tag in VERB_TAGS):
                    add(j, _nearest_verb_left(graph, i))

    # 5. "for" + gerund adjunct ("for maximizing throughput")
    for i, token in enumerate(graph.tokens[:-1]):
        if token.lower == "for" and graph.tokens[i + 1].tag == "VBG":
            add(i + 1, _nearest_verb_left(graph, i))

    clauses.sort(key=lambda c: c.start)
    return clauses


# -- helpers ---------------------------------------------------------------


def _is_infinitive(graph: DependencyGraph, index: int) -> bool:
    """Token *index* is a verb marked with ``to``."""
    if graph.tokens[index].tag not in VERB_TAGS:
        return False
    return any(t.tag == "TO" for t in graph.dependents(index, "mark"))


def _comma_before(graph: DependencyGraph, root_index: int, pred: int) -> bool:
    """A comma separates the fronted clause from the main clause."""
    return any(
        graph.tokens[k].tag == ","
        for k in range(pred + 1, root_index)
    )


def _nearest_verb_left(graph: DependencyGraph, index: int) -> Token | None:
    for i in range(index - 1, -1, -1):
        if graph.tokens[i].tag in VERB_TAGS:
            return graph.tokens[i]
    return None


def _clause_span(graph: DependencyGraph, pred: int) -> tuple[int, int]:
    """Token span of the clause headed at *pred*.

    Starts at the ``to``/idiom marker (if adjacent to the left) and
    runs right until a clause boundary: sentence end, comma/semicolon,
    coordinating conjunction at clause level, or a subordinator.
    """
    start = pred
    j = pred - 1
    while j >= 0 and graph.tokens[j].tag in ("TO", "RB", "IN"):
        start = j
        j -= 1
    n = len(graph.tokens)
    end = pred
    for k in range(pred + 1, n):
        tag = graph.tokens[k].tag
        if tag in (",", ";", ":", "."):
            break
        if tag == "CC":
            break
        end = k
    return start, end
