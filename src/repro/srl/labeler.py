"""Shallow semantic role labeler.

For every verbal predicate in a parsed sentence, emit a
:class:`Frame` with PropBank/CoNLL-style arguments:

* ``V`` — the predicate itself (with its frame sense id);
* ``A0`` — the subject/agent span (``nsubj``; for passives the
  ``nsubjpass`` surface subject is the theme and labeled ``A1``);
* ``A1`` — the object/theme span (``dobj``, or passive subject);
* ``AM-MOD`` — modal auxiliary; ``AM-NEG`` — negation;
* ``AM-PNC`` — purpose clause (from :mod:`repro.srl.purpose`).

This replicates the *output interface* of SENNA as the paper uses it
(Figure 3): Egeria's Selector 5 reads only ``AM-PNC`` arguments and
checks their predicate lemma.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parsing.graph import DependencyGraph, Token
from repro.parsing.parser import DependencyParser
from repro.srl.frames import frame_id
from repro.srl.purpose import find_purpose_clauses
from repro.tagging.tagset import VERB_TAGS


@dataclass(frozen=True)
class Argument:
    """A labeled argument span."""

    role: str
    start: int  # inclusive token index
    end: int    # inclusive token index
    text: str

    def contains_lemma(self, graph: DependencyGraph, lemma: str) -> bool:
        return any(
            t.lemma == lemma for t in graph.tokens[self.start: self.end + 1])


@dataclass
class Frame:
    """One predicate and its labeled arguments."""

    predicate: Token
    sense: str
    arguments: list[Argument] = field(default_factory=list)

    def argument(self, role: str) -> Argument | None:
        for arg in self.arguments:
            if arg.role == role:
                return arg
        return None

    def roles(self) -> set[str]:
        return {a.role for a in self.arguments}


class SemanticRoleLabeler:
    """Label predicates and arguments over dependency parses."""

    def __init__(self) -> None:
        self._parser = DependencyParser()

    def label_sentence(self, sentence: str) -> list[Frame]:
        """Parse *sentence* and label it."""
        return self.label(self._parser.parse(sentence))

    def label(self, graph: DependencyGraph) -> list[Frame]:
        """Label an already-parsed sentence."""
        frames: list[Frame] = []
        purposes = find_purpose_clauses(graph)
        purpose_preds = {p.predicate.index for p in purposes}

        for token in graph.tokens:
            if token.tag not in VERB_TAGS:
                continue
            if token.lemma in ("be", "have", "do") and not self._is_main(
                    graph, token):
                continue
            if graph.has_relation(token.index, "aux") \
                    or graph.has_relation(token.index, "auxpass"):
                continue  # auxiliaries are not predicates
            frame = Frame(token, frame_id(token.lemma))
            self._attach_core_arguments(graph, frame)
            self._attach_modifiers(graph, frame)
            self._split_trailing_adjuncts(graph, frame)
            # attach purpose clauses anchored at this predicate
            for clause in purposes:
                if clause.anchor is not None \
                        and clause.anchor.index == token.index \
                        and clause.predicate.index != token.index:
                    frame.arguments.append(Argument(
                        "AM-PNC", clause.start, clause.end,
                        clause.text(graph)))
            frames.append(frame)

        # a fronted purpose clause (anchor == root) is already covered
        return frames

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _is_main(graph: DependencyGraph, token: Token) -> bool:
        """A be/have/do form is a predicate only when it heads a clause."""
        root = graph.root
        if root is not None and root.index == token.index:
            return True
        return any(
            d.relation in ("conj", "advcl", "xcomp")
            and d.dependent == token.index
            for d in graph.dependencies
        )

    def _attach_core_arguments(
        self, graph: DependencyGraph, frame: Frame
    ) -> None:
        pred = frame.predicate.index
        passive = graph.has_relation(pred, "auxpass") or any(
            d.relation == "nsubjpass" and d.governor == pred
            for d in graph.dependencies
        )
        for dep in graph.dependencies:
            if dep.governor != pred:
                continue
            if dep.relation == "nsubj":
                frame.arguments.append(
                    self._span_argument(graph, "A0", dep.dependent, pred))
            elif dep.relation == "nsubjpass":
                frame.arguments.append(
                    self._span_argument(graph, "A1", dep.dependent, pred))
            elif dep.relation == "dobj" and not passive:
                frame.arguments.append(
                    self._span_argument(graph, "A1", dep.dependent, pred))
        if passive:
            # demoted agent of a passive: "controlled by the programmer"
            agent = self._passive_agent(graph, pred)
            if agent is not None:
                frame.arguments.append(
                    self._span_argument(graph, "A0", agent, pred))

    @staticmethod
    def _passive_agent(graph: DependencyGraph, pred: int) -> int | None:
        """Head of a 'by'-phrase attached at or right after a passive
        predicate, or None."""
        for i in range(pred + 1, min(pred + 3, len(graph.tokens))):
            token = graph.tokens[i]
            if token.lower == "by" and token.tag == "IN":
                objects = graph.dependents(i, "pobj")
                if objects:
                    return objects[0].index
        return None

    #: nouns whose PP reads as a location on the hardware/software map
    _LOCATION_NOUNS = frozenset(
        {"memory", "cache", "register", "device", "host", "kernel",
         "loop", "block", "multiprocessor", "core", "unit", "queue",
         "buffer", "warp", "bank", "chip", "thread", "section",
         "hardware", "file", "array"})
    _LOCATION_PREPS = frozenset({"in", "on", "within", "inside", "into",
                                 "at"})
    _TEMPORAL_PREPS = frozenset({"during", "before", "after", "until",
                                 "while"})
    _TEMPORAL_NOUNS = frozenset(
        {"cycle", "time", "launch", "execution", "startup", "runtime",
         "iteration", "phase", "period", "initialization"})

    def _attach_modifiers(self, graph: DependencyGraph, frame: Frame) -> None:
        pred = frame.predicate.index
        for dep in graph.dependencies:
            if dep.governor != pred:
                continue
            token = graph.tokens[dep.dependent]
            if dep.relation == "aux" and token.tag == "MD":
                frame.arguments.append(
                    Argument("AM-MOD", token.index, token.index, token.text))
            elif dep.relation == "neg":
                frame.arguments.append(
                    Argument("AM-NEG", token.index, token.index, token.text))
            elif dep.relation == "prep":
                self._attach_pp_modifier(graph, frame, token)

    def _split_trailing_adjuncts(
        self, graph: DependencyGraph, frame: Frame
    ) -> None:
        """Carve locative/temporal PPs out of core-argument spans.

        The parser attaches "in shared memory" to the object noun, so
        a span like "the tile in shared memory during kernel
        execution" arrives as one A1; PropBank-style output separates
        the adjuncts (A1 = "the tile", AM-LOC = "in shared memory",
        AM-TMP = "during kernel execution").
        """
        new_arguments: list[Argument] = []
        for arg_index, arg in enumerate(list(frame.arguments)):
            if arg.role not in ("A0", "A1"):
                continue
            cut: int | None = None
            for i in range(arg.start, arg.end + 1):
                token = graph.tokens[i]
                if token.tag != "IN":
                    continue
                role = self._classify_pp(graph, token)
                if role is None:
                    continue
                objects = graph.dependents(token.index, "pobj")
                span_end = objects[0].index if objects else arg.end
                span_end = min(span_end, arg.end)
                new_arguments.append(Argument(
                    role, i, span_end,
                    " ".join(t.text
                             for t in graph.tokens[i: span_end + 1])))
                if cut is None:
                    cut = i
            if cut is not None and cut > arg.start:
                frame.arguments[arg_index] = Argument(
                    arg.role, arg.start, cut - 1,
                    " ".join(t.text
                             for t in graph.tokens[arg.start: cut]))
        frame.arguments.extend(new_arguments)

    def _classify_pp(
        self, graph: DependencyGraph, prep: Token
    ) -> str | None:
        objects = graph.dependents(prep.index, "pobj")
        if not objects:
            return None
        head = objects[0]
        if prep.lower in self._TEMPORAL_PREPS \
                or head.lemma in self._TEMPORAL_NOUNS:
            return "AM-TMP"
        if prep.lower in self._LOCATION_PREPS \
                and head.lemma in self._LOCATION_NOUNS:
            return "AM-LOC"
        return None

    def _attach_pp_modifier(
        self, graph: DependencyGraph, frame: Frame, prep: Token
    ) -> None:
        """Classify a predicate-attached PP as AM-LOC / AM-TMP."""
        objects = graph.dependents(prep.index, "pobj")
        if not objects:
            return
        head = objects[0]
        span_end = head.index
        role: str | None = None
        if prep.lower in self._TEMPORAL_PREPS \
                or head.lemma in self._TEMPORAL_NOUNS:
            role = "AM-TMP"
        elif prep.lower in self._LOCATION_PREPS \
                and head.lemma in self._LOCATION_NOUNS:
            role = "AM-LOC"
        if role is None:
            return
        text = " ".join(
            t.text for t in graph.tokens[prep.index: span_end + 1])
        frame.arguments.append(
            Argument(role, prep.index, span_end, text))

    @staticmethod
    def _span_argument(
        graph: DependencyGraph, role: str, head: int, pred: int
    ) -> Argument:
        """Argument span = the head plus its transitive NP dependents,
        clipped so the span never crosses the predicate."""
        indices = {head}
        frontier = [head]
        while frontier:
            current = frontier.pop()
            for dep in graph.dependencies:
                if dep.governor == current and dep.relation in (
                        "det", "amod", "compound", "num", "prep", "pobj"):
                    if dep.dependent not in indices:
                        indices.add(dep.dependent)
                        frontier.append(dep.dependent)
        start, end = min(indices), max(indices)
        if head < pred:
            end = min(end, pred - 1)
        elif head > pred:
            start = max(start, pred + 1)
        text = " ".join(t.text for t in graph.tokens[start: end + 1])
        return Argument(role, start, end, text)


_DEFAULT = SemanticRoleLabeler()


def label(sentence: str) -> list[Frame]:
    """Label *sentence* with a shared :class:`SemanticRoleLabeler`."""
    return _DEFAULT.label_sentence(sentence)
