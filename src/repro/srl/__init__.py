"""Semantic role labeling substrate (SENNA replacement).

A rule-based shallow semantic parser over the dependency layer.  It
identifies verbal predicates and labels their arguments with
PropBank/CoNLL-style roles: ``V`` (predicate), ``A0`` (subject/agent),
``A1`` (object/theme), ``AM-MOD`` (modal), ``AM-NEG`` (negation) and —
the role Egeria's Selector 5 depends on — ``AM-PNC`` (purpose).

The paper notes that general SRL accuracy is the weak link of NLP
pipelines but that *purpose* roles are recognized far more reliably
(88.2% vs ~75% overall for SENNA); this implementation mirrors that
profile: purpose detection is the carefully engineered part, the rest
is deliberately shallow.
"""

from repro.srl.labeler import Argument, Frame, SemanticRoleLabeler, label
from repro.srl.frames import frame_id, FRAME_INVENTORY
from repro.srl.purpose import find_purpose_clauses, PurposeClause
from repro.srl.conll import frames_to_conll

__all__ = [
    "frames_to_conll",
    "Argument",
    "Frame",
    "SemanticRoleLabeler",
    "label",
    "frame_id",
    "FRAME_INVENTORY",
    "find_purpose_clauses",
    "PurposeClause",
]
