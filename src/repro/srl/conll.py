"""CoNLL-2005-style column output for SRL frames.

SENNA — the labeler the paper used — emits its analyses in the
CoNLL shared-task column format: one row per token, one "SRL" column
per predicate, arguments bracketed ``(A1*`` ... ``*)``.  The paper's
Figure 3 reproduces exactly such a table.  This module renders our
frames the same way, for interoperability and for regenerating the
figure faithfully.
"""

from __future__ import annotations

from repro.parsing.graph import DependencyGraph
from repro.srl.labeler import Frame


def frames_to_conll(graph: DependencyGraph, frames: list[Frame]) -> str:
    """Column-format rendering: token column + one column per frame."""
    n = len(graph.tokens)
    columns: list[list[str]] = []
    for frame in frames:
        column = ["*"] * n
        column[frame.predicate.index] = f"(V*{frame.sense})"
        for argument in frame.arguments:
            start, end = argument.start, argument.end
            if start == end:
                column[start] = f"({argument.role}*)"
            else:
                column[start] = f"({argument.role}*"
                column[end] = "*)"
        columns.append(column)

    widths = [max((len(col[i]) for col in columns), default=1)
              for i in range(n)]
    token_width = max((len(t.text) for t in graph.tokens), default=4)
    lines = []
    for i, token in enumerate(graph.tokens):
        cells = [token.text.ljust(token_width)]
        for column in columns:
            cells.append(column[i].ljust(max(widths[i], 1)))
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def parse_conll_roles(text: str) -> list[dict[str, list[int]]]:
    """Inverse of :func:`frames_to_conll` (role -> token indices).

    Returns one dict per predicate column; used to round-trip-test the
    writer and to ingest external CoNLL-format annotations.
    """
    rows = [line.split() for line in text.splitlines() if line.strip()]
    if not rows:
        return []
    n_columns = max(len(row) for row in rows) - 1
    results: list[dict[str, list[int]]] = [dict() for _ in range(n_columns)]
    open_role: list[str | None] = [None] * n_columns
    for index, row in enumerate(rows):
        cells = row[1:] + ["*"] * (n_columns - (len(row) - 1))
        for column, cell in enumerate(cells):
            label = None
            if cell.startswith("("):
                label = cell[1:].split("*", 1)[0]
                open_role[column] = label
            role = open_role[column]
            if role is not None:
                key = "V" if role.startswith("V") else role
                results[column].setdefault(key, []).append(index)
            if cell.endswith(")"):
                open_role[column] = None
    return results
