"""PropBank-style frame inventory.

A compact frameset covering the verbs that matter in HPC-guide prose —
in particular the paper's ``KEY_PREDICATES`` (maximize, minimize,
recommend, accomplish, achieve, avoid) — with argument glosses in the
PropBank style.  Verbs outside the inventory get a generic ``.01``
frame, matching how SENNA-style labelers always emit a sense id.
"""

from __future__ import annotations

#: lemma -> (frame id, {role: gloss})
FRAME_INVENTORY: dict[str, tuple[str, dict[str, str]]] = {
    "maximize": ("maximize.01", {
        "A0": "causer of maximization, agent",
        "A1": "thing which is being the most",
    }),
    "minimize": ("minimize.01", {
        "A0": "causer of smallness, agent",
        "A1": "thing which is being the least",
    }),
    "recommend": ("recommend.01", {
        "A0": "recommender",
        "A1": "thing recommended",
        "A2": "recommended to",
    }),
    "accomplish": ("accomplish.01", {
        "A0": "accomplisher",
        "A1": "thing accomplished",
    }),
    "achieve": ("achieve.01", {
        "A0": "achiever",
        "A1": "thing achieved",
    }),
    "avoid": ("avoid.01", {
        "A0": "avoider",
        "A1": "thing avoided",
    }),
    "be": ("be.01", {
        "A1": "topic",
        "A2": "comment",
    }),
    "use": ("use.01", {
        "A0": "user",
        "A1": "thing used",
        "A2": "purpose",
    }),
    "reduce": ("reduce.01", {
        "A0": "reducer",
        "A1": "thing decreasing",
        "A2": "amount decreased by",
    }),
    "improve": ("improve.01", {
        "A0": "improver",
        "A1": "thing improved",
    }),
    "increase": ("increase.01", {
        "A0": "causer of increase",
        "A1": "thing increasing",
    }),
    "optimize": ("optimize.01", {
        "A0": "optimizer",
        "A1": "thing optimized",
    }),
    "prefer": ("prefer.01", {
        "A0": "preferrer",
        "A1": "thing preferred",
    }),
    "ensure": ("ensure.01", {
        "A0": "guarantor",
        "A1": "thing guaranteed",
    }),
    "leverage": ("leverage.01", {
        "A0": "user",
        "A1": "thing leveraged",
    }),
    "hide": ("hide.01", {
        "A0": "hider",
        "A1": "thing hidden",
    }),
    "overlap": ("overlap.01", {
        "A0": "agent",
        "A1": "first thing overlapping",
        "A2": "second thing overlapping",
    }),
}


def frame_id(lemma: str) -> str:
    """PropBank-style sense id for *lemma* (generic ``.01`` fallback)."""
    entry = FRAME_INVENTORY.get(lemma)
    return entry[0] if entry is not None else f"{lemma}.01"


def role_gloss(lemma: str, role: str) -> str | None:
    """Argument gloss for *role* of *lemma*, if the frame defines one."""
    entry = FRAME_INVENTORY.get(lemma)
    if entry is None:
        return None
    return entry[1].get(role)
