"""Guide corpus builder.

Assembles a labeled :class:`~repro.docs.document.Document` from
chapter specifications: each chapter draws sentences from the template
families in configured proportions, and may embed hand-written *seed
sentences* (the sentences the paper quotes verbatim from the real
guides) at its front.

Every sentence carries generation-time metadata (ground-truth advising
label, topic, template family) in :class:`SentenceMeta`; the label is
decided by the template family (or by the seed author), never by the
recognizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.templates import FAMILIES, generate
from repro.corpus.topics import Topic
from repro.docs.document import Document, Section, Sentence


@dataclass(frozen=True)
class SeedSentence:
    """A hand-written sentence with explicit label and topic."""

    text: str
    advising: bool
    topic: str
    hard: bool = False


@dataclass(frozen=True)
class ChapterSpec:
    """One chapter: how many sentences, from which families/topics."""

    number: str
    title: str
    n_sentences: int
    #: family -> sampling weight (families from templates.FAMILIES)
    family_mix: dict[str, float]
    #: restrict topics (None = guide-level topic set)
    topics: tuple[Topic, ...] | None = None
    #: hand-written sentences placed at the front of the chapter;
    #: they count toward n_sentences
    seeds: tuple[SeedSentence, ...] = ()
    #: subsection headings to spread sentences over (number suffix,
    #: title); the chapter's own number is prefixed
    subsections: tuple[tuple[str, str], ...] = ()
    #: marks the chapter used for labeled evaluation (paper §4.3)
    labeled: bool = False


@dataclass(frozen=True)
class GuideSpec:
    """A whole guide: name, page count, topics and chapters."""

    name: str
    pages: int
    topics: tuple[Topic, ...]
    chapters: tuple[ChapterSpec, ...]
    seed: int = 0


@dataclass(frozen=True)
class SentenceMeta:
    """Generation-time metadata for one sentence."""

    advising: bool
    topic: str
    family: str
    hard: bool


@dataclass
class LabeledGuide:
    """A built guide: document + aligned metadata."""

    spec: GuideSpec
    document: Document
    meta: list[SentenceMeta] = field(default_factory=list)

    # -- label queries ------------------------------------------------------

    def labels(self) -> list[bool]:
        return [m.advising for m in self.meta]

    def advising_indices(self) -> list[int]:
        return [i for i, m in enumerate(self.meta) if m.advising]

    def labeled_chapter(self) -> Section | None:
        """The chapter marked for labeled evaluation."""
        for spec in self.spec.chapters:
            if spec.labeled:
                return self.document.find_section(spec.number)
        return None

    def labeled_region(self) -> tuple[list[Sentence], list[bool]]:
        """Sentences and labels of the labeled chapter (whole guide if
        no chapter is marked — the Xeon case)."""
        chapter = self.labeled_chapter()
        if chapter is None:
            return self.document.sentences, self.labels()
        sentences = list(chapter.iter_sentences())
        labels = [self.meta[s.index].advising for s in sentences]
        return sentences, labels

    def stats(self) -> dict[str, int]:
        return {
            "sentences": len(self.meta),
            "advising": sum(self.labels()),
            "pages": self.spec.pages,
        }


def build_guide(spec: GuideSpec) -> LabeledGuide:
    """Deterministically build the guide described by *spec*."""
    rng = np.random.default_rng(spec.seed)
    sections: list[Section] = []
    meta: list[SentenceMeta] = []

    for chapter_spec in spec.chapters:
        chapter = Section(
            number=chapter_spec.number, title=chapter_spec.title, level=1)
        sections.append(chapter)
        targets: list[Section] = []
        if chapter_spec.subsections:
            for suffix, sub_title in chapter_spec.subsections:
                sub = Section(
                    number=f"{chapter_spec.number}.{suffix}",
                    title=sub_title,
                    level=2,
                )
                chapter.subsections.append(sub)
                targets.append(sub)
        else:
            targets.append(chapter)

        placements = _spread(chapter_spec.n_sentences, len(targets))
        sentence_budget = iter(range(chapter_spec.n_sentences))
        seeds = list(chapter_spec.seeds)
        topics = chapter_spec.topics or spec.topics
        families = sorted(chapter_spec.family_mix)
        weights = np.array(
            [chapter_spec.family_mix[f] for f in families], dtype=float)
        weights /= weights.sum()

        for target, count in zip(targets, placements):
            for _ in range(count):
                next(sentence_budget)
                if seeds:
                    seed = seeds.pop(0)
                    target.sentences.append(Sentence(seed.text, -1))
                    meta.append(SentenceMeta(
                        seed.advising, seed.topic, "seed", seed.hard))
                    continue
                family = families[int(rng.choice(len(families), p=weights))]
                topic = topics[int(rng.integers(len(topics)))]
                generated = generate(family, topic, rng)
                target.sentences.append(Sentence(generated.text, -1))
                meta.append(SentenceMeta(
                    generated.advising, generated.topic,
                    generated.family, generated.hard))

    document = Document(title=spec.name, sections=sections)
    document.reindex()
    guide = LabeledGuide(spec=spec, document=document, meta=meta)
    if len(guide.meta) != len(document.sentences):
        # an assert here would vanish under `python -O`, silently
        # shipping a guide whose ground-truth labels are misaligned
        # with its sentences — every downstream evaluation number
        # would be wrong
        raise RuntimeError(
            f"guide {spec.name!r} built {len(document.sentences)} "
            f"sentences but {len(guide.meta)} metadata records; "
            f"labels would be misaligned")
    return guide


def _spread(total: int, buckets: int) -> list[int]:
    """Distribute *total* sentences over *buckets* subsections."""
    base, extra = divmod(total, buckets)
    return [base + (1 if i < extra else 0) for i in range(buckets)]


def validate_family_mix(mix: dict[str, float]) -> None:
    unknown = set(mix) - set(FAMILIES)
    if unknown:
        raise ValueError(f"unknown template families: {sorted(unknown)}")
