"""The three guide corpora (CUDA, OpenCL, Xeon Phi).

Sizes and labeled-chapter statistics match the paper:

* CUDA Programming Guide — 2140 sentences / 275 pages; labeled
  chapter 5 *Performance Guidelines* with 177 sentences, 52 advising;
* AMD OpenCL Optimization Guide — 1944 sentences / 178 pages; labeled
  chapter 2 *OpenCL Performance and Optimization for GCN Devices*
  with 556 sentences, 128 advising;
* Intel Xeon Phi Best Practice Guide — 558 sentences / 47 pages,
  labeled in full with 120 advising.

Seed sentences are the ones the paper quotes verbatim (Table 1,
Figure 4, Table 4, §4.2/§4.3 examples), placed in their original
sections with hand-assigned labels and topics.

Guides are deterministic (fixed seeds) and cached per process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.corpus.builder import (
    ChapterSpec,
    GuideSpec,
    LabeledGuide,
    SeedSentence,
    build_guide,
)
from repro.corpus.topics import (
    CUDA_TOPICS,
    DIVERGENCE,
    HOST_TRANSFER,
    INSTRUCTION_THROUGHPUT,
    MEMORY_BANDWIDTH,
    MEMORY_COALESCING,
    MPI_TOPICS,
    OCCUPANCY_LATENCY,
    OPENCL_TOPICS,
    REGISTER_USAGE,
    XEON_TOPICS,
)

# -- family mixes -----------------------------------------------------------

# Mostly expository chapters (intro, API reference, hardware):
_REFERENCE_MIX = {
    "expository": 0.86,
    "keyword": 0.045,
    "imperative": 0.02,
    "subject": 0.02,
    "comparative": 0.015,
    "purpose": 0.01,
    "hard_advising": 0.01,
    "bait": 0.02,
}

# CUDA ch.5: 52/177 advising (29%, 21 from seeds), low miss rate
# (Egeria recall .923), keyword-heavy (Table 8: keyword selector alone
# recall .596)
_CUDA_PERF_MIX = {
    "expository": 0.758,
    "keyword": 0.101,
    "comparative": 0.011,
    "imperative": 0.006,
    "subject": 0.018,
    "purpose": 0.034,
    "hard_advising": 0.012,
    "bait": 0.060,
}

# OpenCL ch.2: 128/556 advising (23%), higher miss rate (recall .797)
_OPENCL_PERF_MIX = {
    "expository": 0.753,
    "keyword": 0.070,
    "comparative": 0.020,
    "imperative": 0.027,
    "subject": 0.022,
    "purpose": 0.017,
    "hard_advising": 0.036,
    "bait": 0.055,
}

# other chapters of the (optimization-focused) OpenCL guide: slightly
# denser advice than ch.2 — the guide's Table 7 selection ratio of 4.4
# implies advice throughout, unlike the CUDA reference chapters
_OPENCL_BODY_MIX = {
    "expository": 0.700,
    "keyword": 0.105,
    "comparative": 0.025,
    "imperative": 0.032,
    "subject": 0.027,
    "purpose": 0.022,
    "hard_advising": 0.036,
    "bait": 0.053,
}

# Xeon guide: 120/558 advising (21.5%), highest miss rate (recall .708)
_XEON_MIX = {
    "expository": 0.780,
    "keyword": 0.070,
    "comparative": 0.013,
    "imperative": 0.015,
    "subject": 0.020,
    "purpose": 0.016,
    "hard_advising": 0.058,
    "bait": 0.028,
}


# -- CUDA seed sentences (paper Figure 4 / Table 4 / §4.2) -----------------

_CUDA_CH5_SEEDS = (
    # 5.1 Overall Performance Optimization Strategies
    SeedSentence(
        "Performance optimization revolves around three basic strategies: "
        "Maximize parallel execution to achieve maximum utilization; "
        "Optimize memory usage to achieve maximum memory throughput; "
        "Optimize instruction usage to achieve maximum instruction "
        "throughput.", True, "occupancy_latency"),
    SeedSentence(
        "Which strategies will yield the best performance gain for a "
        "particular portion of an application depends on the performance "
        "limiters for that portion; optimizing instruction usage of a "
        "kernel that is mostly limited by memory accesses will not yield "
        "any significant performance gain, for example.", True,
        "instruction_throughput"),
    SeedSentence(
        "Optimization efforts should therefore be constantly directed by "
        "measuring and monitoring the performance limiters, for example "
        "using the CUDA profiler.", True, "occupancy_latency"),
    # 5.2.3 Multiprocessor Level
    SeedSentence(
        "At an even lower level, the application should maximize parallel "
        "execution between the various functional units within a "
        "multiprocessor.", True, "occupancy_latency"),
    SeedSentence(
        "The number of clock cycles it takes for a warp to be ready to "
        "execute its next instruction is called the latency, and full "
        "utilization is achieved when all warp schedulers always have some "
        "instruction to issue for some warp at every clock cycle during "
        "that latency period, or in other words, when latency is "
        "completely hidden.", True, "occupancy_latency", hard=True),
    SeedSentence(
        "The number of instructions required to hide a latency of L clock "
        "cycles depends on the respective throughputs of these "
        "instructions; assuming maximum throughput for all instructions, "
        "it is 8L for devices of compute capability 3.x since a "
        "multiprocessor issues a pair of instructions per warp over one "
        "clock cycle for four warps at a time.", True, "occupancy_latency",
        hard=True),
    SeedSentence(
        "The number of warps required to keep the warp schedulers busy "
        "during such high latency periods depends on the kernel code and "
        "its degree of instruction-level parallelism.", True,
        "occupancy_latency", hard=True),
    SeedSentence(
        "Having multiple resident blocks per multiprocessor can help "
        "reduce idling in this case, as warps from different blocks do "
        "not need to wait for each other at synchronization points.",
        True, "occupancy_latency"),
    SeedSentence(
        "Register usage can be controlled using the maxrregcount compiler "
        "option or launch bounds as described in Launch Bounds.",
        True, "register_usage"),
    SeedSentence(
        "Applications can also parameterize execution configurations based "
        "on register file size and shared memory size, which depends on "
        "the compute capability of the device, as well as on the number of "
        "multiprocessors and memory bandwidth of the device, all of which "
        "can be queried using the runtime.", True, "register_usage"),
    SeedSentence(
        "The number of threads per block should be chosen as a multiple "
        "of the warp size to avoid wasting computing resources with "
        "under-populated warps as much as possible.", True,
        "occupancy_latency"),
    # 5.3.2 Device Memory Accesses
    SeedSentence(
        "For example, for global memory, as a general rule, the more "
        "scattered the addresses are, the more reduced the throughput is.",
        True, "memory_coalescing", hard=True),
    SeedSentence(
        "In general, the more transactions are necessary, the more unused "
        "words are transferred in addition to the words accessed by the "
        "threads, reducing the instruction throughput accordingly.",
        True, "memory_coalescing", hard=True),
    SeedSentence(
        "To maximize global memory throughput, it is therefore important "
        "to maximize coalescing by: Following the most optimal access "
        "patterns based on Compute Capability 2.x and Compute Capability "
        "3.x, Using data types that meet the size and alignment "
        "requirement detailed in Device Memory Accesses, Padding data in "
        "some cases, for example, when accessing a two-dimensional array "
        "as described in Device Memory Accesses.", True,
        "memory_coalescing"),
    SeedSentence(
        "Also, it is designed for streaming fetches with a constant "
        "latency; a cache hit reduces DRAM bandwidth demand but not fetch "
        "latency.", True, "memory_bandwidth"),
    # 5.4 Maximize Instruction Throughput
    SeedSentence(
        "To maximize instruction throughput the application should: "
        "Minimize the use of arithmetic instructions with low throughput; "
        "this includes trading precision for speed when it does not affect "
        "the end result, such as using intrinsic instead of regular "
        "functions, single-precision instead of double-precision, or "
        "flushing denormalized numbers to zero; Minimize divergent warps "
        "caused by control flow instructions as detailed in Control Flow "
        "Instructions; Reduce the number of instructions, for example, by "
        "optimizing out synchronization points whenever possible or by "
        "using restricted pointers.", True, "instruction_throughput"),
    # 5.4.1 Arithmetic Instructions
    SeedSentence(
        "cuobjdump can be used to inspect a particular implementation in "
        "a cubin object.", True, "instruction_throughput"),
    SeedSentence(
        "As the slow path requires more registers than the fast path, an "
        "attempt has been made to reduce register pressure in the slow "
        "path by storing some intermediate variables in local memory, "
        "which may affect performance because of local memory high "
        "latency and bandwidth.", True, "register_usage"),
    SeedSentence(
        "This last case can be avoided by using single-precision "
        "floating-point constants, defined with an f suffix such as "
        "3.141592653589793f, 1.0f, 0.5f.", True, "instruction_throughput",
        hard=True),
    # 5.4.2 Control Flow Instructions
    SeedSentence(
        "To obtain best performance in cases where the control flow "
        "depends on the thread ID, the controlling condition should be "
        "written so as to minimize the number of divergent warps.",
        True, "divergence"),
    SeedSentence(
        "The programmer can also control loop unrolling using the #pragma "
        "unroll directive.", True, "instruction_throughput"),
    SeedSentence(
        "Any flow control instruction (if, switch, do, for, while) can "
        "significantly impact the effective instruction throughput by "
        "causing threads of the same warp to diverge (i.e., to follow "
        "different execution paths).", False, "divergence", hard=True),
    SeedSentence(
        "If this happens, the different execution paths have to be "
        "serialized, increasing the total number of instructions executed "
        "for this warp.", False, "divergence"),
    SeedSentence(
        "Execution time varies depending on the instruction, but it is "
        "typically about 22 clock cycles for devices of compute capability "
        "2.x and about 11 clock cycles for devices of compute capability "
        "3.x, which translates to 22 warps for devices of compute "
        "capability 2.x and 44 warps for devices of compute capability "
        "3.x and higher.", False, "occupancy_latency"),
    # additional guide-genre prose (advising and expository)
    SeedSentence(
        "Also, because of the overhead associated with each transfer, "
        "batching many small transfers into a single large transfer "
        "always performs better than making each transfer separately.",
        True, "host_transfer"),
    SeedSentence(
        "On systems with a front-side bus, higher performance for data "
        "transfers between host and device is achieved by using "
        "page-locked host memory.", True, "host_transfer"),
    SeedSentence(
        "When using mapped page-locked memory, there is no need to "
        "allocate any device memory and explicitly copy data between "
        "device and host memory.", True, "host_transfer", hard=True),
    SeedSentence(
        "Assuming the mapped memory is read or written only once, using "
        "mapped page-locked memory instead of explicit copies between "
        "device and host memory can be a win for performance.",
        True, "host_transfer"),
    SeedSentence(
        "Synchronization points impose an ordering on memory operations "
        "and can force the hardware to idle; reduce their number "
        "whenever the algorithm allows.", True, "instruction_throughput"),
    SeedSentence(
        "It is therefore recommended to use signed integers rather than "
        "unsigned integers as loop counters.", True,
        "instruction_throughput"),
    SeedSentence(
        "At points where threads of the same block need to synchronize, "
        "they should use __syncthreads() and share data through shared "
        "memory.", True, "occupancy_latency"),
    SeedSentence(
        "A common programming pattern is to stage data coming from "
        "device memory into shared memory: each thread of a block loads "
        "data from device memory to shared memory, synchronizes, "
        "processes, and writes the results back.", True,
        "memory_bandwidth", hard=True),
    SeedSentence(
        "Performance optimization is an iterative process: measure, "
        "identify the limiter, tune, and measure again.",
        True, "occupancy_latency", hard=True),
    SeedSentence(
        "The effective bandwidth of each memory space depends "
        "significantly on the memory access pattern as described in the "
        "following sections.", False, "memory_coalescing"),
    SeedSentence(
        "To achieve high bandwidth, shared memory is divided into "
        "equally-sized memory modules, called banks, which can be "
        "accessed simultaneously.", False, "memory_bandwidth", hard=True),
    SeedSentence(
        "For devices of compute capability 2.x and higher, the same "
        "on-chip memory is used for both L1 and shared memory, and the "
        "split is configurable for each kernel call.",
        False, "memory_bandwidth"),
    SeedSentence(
        "Any access to a register costs zero extra clock cycles per "
        "instruction, but delays may occur due to register "
        "read-after-write dependencies and bank conflicts.",
        False, "register_usage"),
    SeedSentence(
        "The throughput of memory accesses by a kernel can vary by an "
        "order of magnitude depending on the access pattern for each "
        "type of memory.", False, "memory_coalescing"),
    SeedSentence(
        "Sometimes the compiler may unroll loops or optimize out if or "
        "switch statements by using branch predication instead; in these "
        "cases no warp can ever diverge.", False, "divergence",
        hard=True),
)

_CUDA_SPEC = GuideSpec(
    name="CUDA C Programming Guide",
    pages=275,
    topics=CUDA_TOPICS,
    seed=1701,
    chapters=(
        ChapterSpec("1", "Introduction", 150, _REFERENCE_MIX,
                    subsections=(("1", "From Graphics Processing to "
                                  "General Purpose Parallel Computing"),
                                 ("2", "CUDA: A General-Purpose Parallel "
                                  "Computing Platform"),
                                 ("3", "A Scalable Programming Model"))),
        ChapterSpec("2", "Programming Model", 280, _REFERENCE_MIX,
                    subsections=(("1", "Kernels"),
                                 ("2", "Thread Hierarchy"),
                                 ("3", "Memory Hierarchy"),
                                 ("4", "Heterogeneous Programming"))),
        ChapterSpec("3", "Programming Interface", 620, _REFERENCE_MIX,
                    subsections=(("1", "Compilation with NVCC"),
                                 ("2", "CUDA C Runtime"),
                                 ("3", "Versioning and Compatibility"),
                                 ("4", "Compute Modes"),
                                 ("5", "Mode Switches"))),
        ChapterSpec("4", "Hardware Implementation", 300, _REFERENCE_MIX,
                    subsections=(("1", "SIMT Architecture"),
                                 ("2", "Hardware Multithreading"))),
        ChapterSpec("5", "Performance Guidelines", 177, _CUDA_PERF_MIX,
                    seeds=_CUDA_CH5_SEEDS, labeled=True,
                    subsections=(("1", "Overall Performance Optimization "
                                  "Strategies"),
                                 ("2", "Maximize Utilization"),
                                 ("3", "Maximize Memory Throughput"),
                                 ("4", "Maximize Instruction Throughput"))),
        ChapterSpec("6", "C Language Extensions", 400, _REFERENCE_MIX,
                    subsections=(("1", "Function Type Qualifiers"),
                                 ("2", "Variable Type Qualifiers"),
                                 ("3", "Built-in Variables"))),
        ChapterSpec("7", "Mathematical Functions", 213, _REFERENCE_MIX,
                    subsections=(("1", "Standard Functions"),
                                 ("2", "Intrinsic Functions"))),
    ),
)

# -- OpenCL seed sentences (paper Table 1 category examples, §4.3) ---------

_OPENCL_CH2_SEEDS = (
    SeedSentence(
        "This can be a good choice when the host does not read the memory "
        "object to avoid the host having to make a copy of the data to "
        "transfer.", True, "host_transfer"),
    SeedSentence(
        "Thus, a developer may prefer using buffers instead of images if "
        "no sampling operation is needed.", True, "memory_bandwidth"),
    SeedSentence(
        "This synchronization guarantee can often be leveraged to avoid "
        "explicit clWaitForEvents() calls between command submissions.",
        True, "host_transfer"),
    SeedSentence(
        "Pinning takes time, so avoid incurring pinning costs where CPU "
        "overhead must be avoided.", True, "host_transfer"),
    SeedSentence(
        "For peak performance on all devices, developers can choose to "
        "use conditional compilation for key code loops in the kernel, or "
        "in some cases even provide two separate kernels.", True,
        "instruction_throughput"),
    SeedSentence(
        "As shown below, programmers must carefully control the bank bits "
        "to avoid bank conflicts as much as possible.", True, "wavefront"),
    SeedSentence(
        "Native functions are generally supported in hardware and can run "
        "substantially faster, although at somewhat lower accuracy.",
        True, "instruction_throughput", hard=True),
    SeedSentence(
        "The scalar instructions can use up to two SGPR sources per "
        "cycle.", False, "wavefront"),
    SeedSentence(
        "All allocations are aligned on the 16-byte boundary.",
        False, "memory_coalescing"),
)

_OPENCL_SPEC = GuideSpec(
    name="AMD OpenCL Optimization Guide",
    pages=178,
    topics=OPENCL_TOPICS,
    seed=2042,
    chapters=(
        ChapterSpec("1", "OpenCL Performance and Optimization", 560,
                    _OPENCL_BODY_MIX,
                    subsections=(("1", "AMD CodeXL"),
                                 ("2", "Estimating Performance"),
                                 ("3", "OpenCL Memory Objects"),
                                 ("4", "OpenCL Data Transfer Optimization"))),
        ChapterSpec("2", "OpenCL Performance and Optimization for GCN "
                    "Devices", 556, _OPENCL_PERF_MIX,
                    seeds=_OPENCL_CH2_SEEDS, labeled=True,
                    subsections=(("1", "Global Memory Optimization"),
                                 ("2", "Local Memory (LDS) Optimization"),
                                 ("3", "Constant Memory Optimization"),
                                 ("4", "Instruction Selection "
                                  "Optimizations"),
                                 ("5", "Additional Performance Guidance"))),
        ChapterSpec("3", "OpenCL Static C++ Programming Language", 400,
                    _OPENCL_BODY_MIX,
                    subsections=(("1", "Overview"),
                                 ("2", "Additions and Changes"))),
        ChapterSpec("4", "OpenCL 2.0", 428, _OPENCL_BODY_MIX,
                    subsections=(("1", "Shared Virtual Memory"),
                                 ("2", "Generic Address Space"),
                                 ("3", "Device-side Enqueue"))),
    ),
)

# -- Xeon Phi guide ----------------------------------------------------------

# PRACE-style best-practice prose addresses the reader as "users"/"one"
# and uses "have to be" obligations — the exact pocket of sentences the
# paper's §4.3 keyword tuning recovers (recall .708 -> .892).
_XEON_SEEDS = (
    SeedSentence(
        "To achieve good vectorization, the data should be aligned on "
        "64-byte boundaries.", True, "vectorization"),
    SeedSentence(
        "Users have to be careful when placing more than two threads per "
        "core on memory-bound workloads.", True, "affinity", hard=True),
    SeedSentence(
        "One can use the KMP_AFFINITY environment variable to pin threads "
        "to hardware contexts.", True, "affinity", hard=True),
    SeedSentence(
        "Users have to be aware that the in-order cores stall on any "
        "cache miss, so prefetching matters far more here.",
        True, "vectorization", hard=True),
    SeedSentence(
        "One can query the vectorization report to see which loops the "
        "compiler refused to vectorize.", True, "vectorization",
        hard=True),
    SeedSentence(
        "Loop bounds have to be known at compile time for the best "
        "unrolling decisions.", True, "vectorization", hard=True),
    SeedSentence(
        "Users have to be explicit about streaming stores, or the "
        "write-allocate traffic doubles the bandwidth demand.",
        True, "memory_bandwidth", hard=True),
    SeedSentence(
        "One can set the scatter affinity policy when the working set "
        "per thread exceeds the per-core cache share.",
        True, "affinity", hard=True),
    SeedSentence(
        "Offload buffers have to be reused across invocations, or the "
        "allocation cost dominates the transfer time.",
        True, "host_transfer", hard=True),
    SeedSentence(
        "One can run the native build first, since it exposes threading "
        "bugs without the offload machinery.", True, "affinity",
        hard=True),
    SeedSentence(
        "Users have to be patient with the first-touch policy and "
        "initialize arrays inside the parallel region.",
        True, "memory_bandwidth", hard=True),
    SeedSentence(
        "The coprocessor has in-order cores with four hardware threads "
        "each.", False, "affinity"),
    SeedSentence(
        "Each core includes a 512-bit wide vector processing unit.",
        False, "vectorization"),
)

_XEON_SPEC = GuideSpec(
    name="Intel Xeon Phi Best Practice Guide",
    pages=47,
    topics=XEON_TOPICS,
    seed=3117,
    chapters=(
        ChapterSpec("1", "Introduction and Architecture", 120, _XEON_MIX,
                    seeds=_XEON_SEEDS, labeled=False,
                    subsections=(("1", "Overview"),
                                 ("2", "Many Integrated Core Architecture"))),
        ChapterSpec("2", "Programming Models", 150, _XEON_MIX,
                    subsections=(("1", "Native Execution"),
                                 ("2", "Offload Execution"))),
        ChapterSpec("3", "Vectorization and Tuning", 168, _XEON_MIX,
                    subsections=(("1", "Vectorization Basics"),
                                 ("2", "Compiler Reports"),
                                 ("3", "Memory Tuning"))),
        ChapterSpec("4", "Thread Parallelism", 120, _XEON_MIX,
                    subsections=(("1", "OpenMP Tuning"),
                                 ("2", "Affinity Control"))),
    ),
)


# -- MPI guide (generality experiment: a non-GPU domain) --------------------

_MPI_SEEDS = (
    SeedSentence(
        "Ranks should aggregate small messages into fewer large messages "
        "to reduce latency overhead.", True, "mpi_messaging"),
    SeedSentence(
        "One can overlap communication with computation using "
        "nonblocking calls.", True, "mpi_messaging", hard=True),
    SeedSentence(
        "Use derived datatypes to avoid manual packing of strided data.",
        True, "mpi_messaging"),
    SeedSentence(
        "The eager protocol copies small messages into internal buffers.",
        False, "mpi_messaging"),
    SeedSentence(
        "A communicator contains an ordered set of processes.",
        False, "mpi_collectives"),
)

_MPI_SPEC = GuideSpec(
    name="MPI Performance Tuning Guide",
    pages=52,
    topics=MPI_TOPICS,
    seed=4242,
    chapters=(
        ChapterSpec("1", "Point-to-Point Communication", 220, _XEON_MIX,
                    seeds=_MPI_SEEDS, labeled=False,
                    subsections=(("1", "Message Protocols"),
                                 ("2", "Nonblocking Communication"))),
        ChapterSpec("2", "Collective Operations", 200, _XEON_MIX,
                    subsections=(("1", "Reductions"),
                                 ("2", "Synchronization"))),
        ChapterSpec("3", "Parallel I/O", 180, _XEON_MIX,
                    subsections=(("1", "Collective I/O"),
                                 ("2", "File Views"))),
    ),
)


@lru_cache(maxsize=None)
def cuda_guide() -> LabeledGuide:
    """The CUDA corpus (cached)."""
    return build_guide(_CUDA_SPEC)


@lru_cache(maxsize=None)
def opencl_guide() -> LabeledGuide:
    """The OpenCL corpus (cached)."""
    return build_guide(_OPENCL_SPEC)


@lru_cache(maxsize=None)
def xeon_guide() -> LabeledGuide:
    """The Xeon Phi corpus (cached; labeled in full)."""
    return build_guide(_XEON_SPEC)


@lru_cache(maxsize=None)
def mpi_guide() -> LabeledGuide:
    """The MPI corpus (cached) — the non-GPU generality experiment."""
    return build_guide(_MPI_SPEC)


GUIDE_BUILDERS = {
    "cuda": cuda_guide,
    "opencl": opencl_guide,
    "xeon": xeon_guide,
    "mpi": mpi_guide,
}
