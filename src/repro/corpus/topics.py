"""Topic definitions and per-domain vocabularies for corpus generation.

A *topic* is an optimization concern (memory coalescing, divergence,
occupancy, ...).  Generated sentences are tagged with their topic; the
Table 6 relevance ground truth is defined topic-wise (an advising
sentence is relevant to a performance issue iff its topic is in the
issue's relevant-topic set — mirroring how the paper's human raters
judged relevance by subject matter).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topic:
    """One optimization concern with its term pool."""

    name: str
    #: noun phrases usable as objects/subjects in templates
    things: tuple[str, ...]
    #: actions (verb phrases, imperative-compatible) for the topic
    actions: tuple[str, ...]
    #: metrics/goals associated with the topic
    goals: tuple[str, ...]


# -- shared GPU topics ------------------------------------------------------

MEMORY_COALESCING = Topic(
    "memory_coalescing",
    things=("global memory accesses", "memory transactions",
            "load instructions", "access patterns", "base addresses",
            "strided accesses", "scattered addresses", "memory requests"),
    actions=("align the base address on a 128-byte segment",
             "coalesce accesses of threads in the same warp",
             "rearrange memory access instructions",
             "pad two-dimensional arrays to the aligned pitch",
             "use data types that meet the size and alignment requirement"),
    goals=("maximize coalescing", "achieve aligned accesses",
           "minimize wasted transactions"),
)

DIVERGENCE = Topic(
    "divergence",
    things=("divergent branches", "flow control instructions",
            "branching behavior", "divergent warps", "predicated "
            "instructions", "serialization of execution paths"),
    actions=("write the controlling condition to follow the thread index",
             "remove the if-else block from the inner loop",
             "reorder tasks so threads in a warp take the same path",
             "move uniform branches out of the kernel"),
    goals=("minimize the number of divergent warps",
           "maximize warp execution efficiency",
           "avoid divergent branches"),
)

OCCUPANCY_LATENCY = Topic(
    "occupancy_latency",
    things=("instruction latency", "resident warps", "occupancy",
            "warp schedulers", "instruction-level parallelism",
            "synchronization points", "memory latency"),
    actions=("increase the number of resident blocks per multiprocessor",
             "tune the dimensions of thread blocks and grids",
             "choose the number of threads per block as a multiple of the "
             "warp size", "expose more independent instructions per thread"),
    goals=("hide instruction latency", "maximize utilization",
           "achieve full occupancy"),
)

REGISTER_USAGE = Topic(
    "register_usage",
    things=("register usage", "register pressure", "register spilling",
            "the maxrregcount compiler option", "launch bounds",
            "local memory traffic"),
    actions=("control register usage with the maxrregcount compiler option",
             "use launch bounds to bound register allocation",
             "store rarely used temporaries in shared memory"),
    goals=("avoid register spilling", "minimize register pressure"),
)

MEMORY_BANDWIDTH = Topic(
    "memory_bandwidth",
    things=("memory throughput", "device memory bandwidth",
            "data transfers", "the texture cache", "shared memory tiles",
            "redundant global loads", "cache lines"),
    actions=("stage reused data in shared memory tiles",
             "use the texture cache for scattered read-only data",
             "fuse kernels to eliminate intermediate stores",
             "compress data to shrink the transferred volume"),
    goals=("maximize memory throughput", "minimize data transfers with "
           "low bandwidth", "achieve peak bandwidth"),
)

INSTRUCTION_THROUGHPUT = Topic(
    "instruction_throughput",
    things=("arithmetic instructions", "intrinsic functions",
            "single-precision operations", "denormalized numbers",
            "synchronization instructions", "the special function units"),
    actions=("use intrinsic functions instead of regular functions",
             "trade precision for speed with single-precision constants",
             "unroll the innermost loop with the #pragma unroll directive",
             "flush denormalized numbers to zero"),
    goals=("maximize instruction throughput",
           "minimize the use of low-throughput instructions",
           "reduce the number of executed instructions"),
)

HOST_TRANSFER = Topic(
    "host_transfer",
    things=("host-device transfers", "pinned memory", "the PCIe bus",
            "asynchronous copies", "mapped memory", "staging buffers"),
    actions=("use pinned memory for frequently transferred buffers",
             "batch many small transfers into one large transfer",
             "overlap transfers with kernel execution using streams"),
    goals=("minimize transfer overhead", "achieve overlap of copy and "
           "compute", "avoid redundant host synchronization"),
)

# -- domain-specific extra topics -----------------------------------------

OPENCL_WAVEFRONT = Topic(
    "wavefront",
    things=("wavefronts", "work-groups", "the GCN compute units",
            "LDS bank conflicts", "vector general-purpose registers",
            "the scalar unit"),
    actions=("choose the work-group size as a multiple of the wavefront "
             "size", "pad LDS arrays to avoid bank conflicts",
             "vectorize loads into float4 accesses"),
    goals=("avoid LDS bank conflicts", "maximize wavefront occupancy",
           "achieve full compute-unit utilization"),
)

XEON_VECTORIZATION = Topic(
    "vectorization",
    things=("the 512-bit vector units", "vectorized loops",
            "compiler vectorization reports", "data alignment",
            "the #pragma simd directive", "gather and scatter instructions"),
    actions=("align data on 64-byte boundaries for the vector units",
             "use the #pragma simd directive on the hot loop",
             "restructure the loop so the compiler can vectorize it"),
    goals=("achieve full vector-unit utilization",
           "maximize vectorization coverage", "avoid gather instructions"),
)

XEON_AFFINITY = Topic(
    "affinity",
    things=("thread affinity", "the KMP_AFFINITY variable",
            "hardware threads per core", "NUMA placement",
            "the scatter affinity policy", "core binding"),
    actions=("pin threads with the KMP_AFFINITY environment variable",
             "use the scatter policy to spread threads across cores",
             "run four hardware threads per core for latency hiding"),
    goals=("avoid thread migration", "achieve balanced core utilization",
           "maximize memory locality"),
)

MPI_MESSAGING = Topic(
    "mpi_messaging",
    things=("small messages", "nonblocking sends", "message aggregation",
            "the eager protocol", "communication buffers",
            "the rendezvous threshold", "derived datatypes"),
    actions=("aggregate small messages into fewer large messages",
             "post receives before the matching sends arrive",
             "overlap communication with computation using nonblocking "
             "calls", "use derived datatypes instead of manual packing"),
    goals=("minimize message latency", "achieve communication overlap",
           "avoid unexpected-message buffering"),
)

MPI_COLLECTIVES = Topic(
    "mpi_collectives",
    things=("collective operations", "allreduce calls", "barriers",
            "the communicator layout", "process topologies",
            "reduction trees"),
    actions=("replace point-to-point exchanges with collective "
             "operations", "remove unnecessary barriers between phases",
             "reorder ranks to match the network topology"),
    goals=("minimize collective completion time",
           "avoid global synchronization", "achieve balanced reductions"),
)

MPI_IO = Topic(
    "mpi_io",
    things=("collective writes", "file views", "two-phase buffering",
            "independent reads", "stripe alignment", "aggregator nodes"),
    actions=("use collective writes instead of independent writes",
             "set the file view to match the data layout",
             "align stripes with the parallel file system"),
    goals=("maximize aggregate write bandwidth",
           "minimize file-system contention", "achieve contiguous access"),
)

#: Topics per domain (the CUDA set covers the six Table 6 issues).
CUDA_TOPICS = (
    MEMORY_COALESCING, DIVERGENCE, OCCUPANCY_LATENCY, REGISTER_USAGE,
    MEMORY_BANDWIDTH, INSTRUCTION_THROUGHPUT, HOST_TRANSFER,
)
OPENCL_TOPICS = (
    MEMORY_COALESCING, DIVERGENCE, OCCUPANCY_LATENCY, MEMORY_BANDWIDTH,
    INSTRUCTION_THROUGHPUT, HOST_TRANSFER, OPENCL_WAVEFRONT,
)
XEON_TOPICS = (
    XEON_VECTORIZATION, XEON_AFFINITY, MEMORY_BANDWIDTH,
    OCCUPANCY_LATENCY, HOST_TRANSFER,
)
MPI_TOPICS = (MPI_MESSAGING, MPI_COLLECTIVES, MPI_IO, MEMORY_BANDWIDTH)
