"""Sentence template engine for guide generation.

Template families and their ground-truth labels:

* ``ADVISING_*`` — advising sentences in the paper's six categories
  (Table 1).  Label: advising.
* ``HARD_ADVISING`` — advice phrased *without* any of the flagged
  patterns (the recall-limiting cases §4.3 discusses, e.g. "Native
  functions are generally supported in hardware and can run
  substantially faster").  Label: advising.
* ``EXPOSITORY`` — architecture facts, definitions, quantitative
  examples.  Label: not advising.  They share topic vocabulary with
  advising sentences, which is what defeats the full-doc and keywords
  baselines (relevant-but-not-advising).
* ``BAIT`` — non-advising sentences that superficially carry flagged
  material (key subjects in non-advisory roles, keywords inside
  descriptions), producing the selector false positives the paper
  reports.  Label: not advising.

The ground-truth label is a property of the template family, decided
here at authoring time — the generator never consults the selectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.topics import Topic


@dataclass(frozen=True)
class GeneratedSentence:
    """One generated sentence with its provenance."""

    text: str
    advising: bool
    topic: str
    family: str          # template family id
    hard: bool = False   # deliberately difficult case


# Each template is a callable slotting topic terms; {thing}/{action}/{goal}
# are drawn from the topic's pools.

ADVISING_KEYWORD = (
    "For best performance, {action}.",
    "To get higher performance, applications should {action}.",
    "It is a good idea to {action} whenever the kernel is memory bound.",
    "A good choice is to {action} for kernels dominated by {thing}.",
    "One way to {goal} is to {action}.",
    "{Action} can lead to much better behavior of {thing}.",
    "Restructuring the code to {action} can help {goal}.",
    "{Thing} can be used to {goal} in many kernels.",
    "It is desirable to {action} before tuning anything else.",
    "Tuning {thing} should be the first step, because it tends to "
    "{goal} with little effort.",
    "{Action} is encouraged on all recent devices.",
    "The key to good throughput is to {action}.",
    "Programmers benefit from {gerund_action}, especially when {thing} "
    "dominate the profile.",
    "Using this feature is more appropriate than relying on {thing}.",
    "Prefer small launch configurations instead of oversubscribing "
    "{thing}.",
)

ADVISING_COMPARATIVE = (
    "A developer may prefer {gerund_action} when {thing} limit "
    "performance.",
    "It is recommended to {action} on this architecture.",
    "It is important to {action} before launching long kernels.",
    "It is often beneficial to {action} in bandwidth-bound code.",
    "This mechanism can be leveraged to {goal} without extra "
    "synchronization.",
    "It is best to {action} when the occupancy is already high.",
    "It is useful to {action} while profiling {thing}.",
    "It is required to {action} on devices without caches.",
)

ADVISING_IMPERATIVE = (
    "Use {thing} to {goal}.",
    "Avoid {thing} inside the innermost loop.",
    "Align {thing} to the transaction size to {goal}.",
    "Make {thing} contiguous so the hardware can combine them.",
    "Ensure that {thing} stay within one cache line.",
    "Unroll the loop over {thing} to {goal}.",
    "Move the computation of {thing} outside the kernel to {goal}.",
    "Schedule transfers early, and {action}.",
    "Pack small records together, then {action}.",
    "Map read-only data through {thing} to {goal}.",
)

ADVISING_SUBJECT = (
    "Developers can {action} to {goal}.",
    "The programmer can also {action} when {thing} become the "
    "bottleneck.",
    "Applications can {action} based on the compute capability of the "
    "device.",
    "A common technique is {gerund_action}, which tends to {goal}.",
    "This optimization {goal_third}s best when combined with "
    "{gerund_action}.",
    "An effective solution is {gerund_action} of {thing}.",
    "The general guideline is that applications {action_plain} whenever "
    "{thing} saturate.",
)

ADVISING_PURPOSE = (
    "To {goal}, {action}.",
    "{Action} in order to {goal}.",
    "The first step in improving {thing} is to {goal_as_action}.",
    "{Action} so as to {goal}.",
    "Stage intermediate values in registers to {goal}.",
    "Pad {thing} to avoid conflicts and to {goal}.",
    "Restructure {thing} to {goal} as much as possible.",
)

HARD_ADVISING = (
    # advice without any flagged word, pattern, subject, or purpose —
    # the recall-limiting cases
    "Native functions are generally supported in hardware and run "
    "substantially faster, although at somewhat lower accuracy.",
    "Kernels that keep {thing} within one cache line see markedly "
    "higher effective bandwidth.",
    "In practice, {gerund_action} pays off once {thing} dominate the "
    "execution profile.",
    "Caches on recent devices make {gerund_action} less critical, yet "
    "the gap remains visible on large inputs.",
    "Code that touches {thing} sparingly tends to scale further on "
    "wide machines.",
    "There is rarely a downside to {gerund_action} on current "
    "hardware.",
    "Experienced teams usually {action_plain} before resorting to "
    "assembly-level tuning.",
    "Hardware with relaxed alignment rules still rewards programs "
    "that {action_plain}.",
)

EXPOSITORY = (
    "The device has {n} {thing} per compute unit.",
    "{Thing} are issued over {n} clock cycles on this generation.",
    "Each multiprocessor contains {n} schedulers that select among "
    "{thing}.",
    "{Thing} refer to the transactions the hardware issues for a warp.",
    "In the example above, the kernel performs {n} operations on "
    "{thing}.",
    "Execution time varies depending on the instruction mix and on "
    "{thing}.",
    "For devices of compute capability 2.x, {thing} are cached in L1.",
    "The figure shows how {thing} map onto the physical units.",
    "{Thing} occupy one slot in the scoreboard until completion.",
    "On this architecture, {thing} share a port with the load unit.",
    "The counter reports the number of {thing} per kernel launch.",
    "Version 6.5 of the toolkit changed how {thing} are measured.",
    "A warp consists of 32 threads that execute {thing} in lockstep.",
    "The table lists the throughput of {thing} for each generation.",
    "When a request misses, the hardware forwards it to the next "
    "level and records {thing}.",
    "Chapter {n} describes {thing} in full detail.",
    "{Thing} were introduced with the second hardware generation.",
)

BAIT = (
    # key subject in a non-advisory role (paper's own false-positive
    # example has subject 'programmer')
    "This section provides some guidance for experienced programmers "
    "who are programming a GPU for the first time.",
    "Developers familiar with {thing} recognize this behavior from "
    "older architectures.",
    "The application in this example measures {thing} rather than "
    "tuning them.",
    "Many programmers assume {thing} are free, which the profiler "
    "disproves.",
    # flagged keyword inside a purely descriptive statement
    "Whether {gerund_action} helps depends entirely on the input "
    "distribution; the guide makes no recommendation here.",
    "The benchmark gains nothing from {gerund_action} in this "
    "configuration.",
    "Earlier drafts of this chapter described {gerund_action}, which "
    "was moved to the appendix.",
)


def _gerund(action: str) -> str:
    """Naive gerundization of a verb-initial action phrase."""
    head, _, rest = action.partition(" ")
    lowered = head.lower()
    if lowered.endswith("e") and not lowered.endswith(("ee", "le")):
        gerund = lowered[:-1] + "ing"
    elif lowered.endswith(("n", "p", "t")) and len(lowered) > 2 \
            and lowered[-2] in "aeiou" and lowered[-3] not in "aeiou":
        gerund = lowered + lowered[-1] + "ing"
    else:
        gerund = lowered + "ing"
    return f"{gerund} {rest}" if rest else gerund


def _plural_agree(action: str) -> str:
    """Use the bare action after a plural subject ("applications X")."""
    return action


def fill(template: str, topic: Topic, rng: np.random.Generator) -> str:
    """Instantiate *template* with terms from *topic*."""
    thing = topic.things[int(rng.integers(len(topic.things)))]
    action = topic.actions[int(rng.integers(len(topic.actions)))]
    goal = topic.goals[int(rng.integers(len(topic.goals)))]
    n = int(rng.integers(2, 64))
    text = template
    replacements = {
        "{thing}": thing,
        "{Thing}": thing[0].upper() + thing[1:],
        "{action}": action,
        "{Action}": action[0].upper() + action[1:],
        "{action_plain}": _plural_agree(action),
        "{gerund_action}": _gerund(action),
        "{goal}": goal,
        "{goal_as_action}": goal,
        "{goal_third}": goal.split()[0],
        "{n}": str(n),
    }
    for slot, value in replacements.items():
        text = text.replace(slot, value)
    return text


#: family name -> (templates, advising?, hard?)
FAMILIES: dict[str, tuple[tuple[str, ...], bool, bool]] = {
    "keyword": (ADVISING_KEYWORD, True, False),
    "comparative": (ADVISING_COMPARATIVE, True, False),
    "imperative": (ADVISING_IMPERATIVE, True, False),
    "subject": (ADVISING_SUBJECT, True, False),
    "purpose": (ADVISING_PURPOSE, True, False),
    "hard_advising": (HARD_ADVISING, True, True),
    "expository": (EXPOSITORY, False, False),
    "bait": (BAIT, False, True),
}


def generate(
    family: str, topic: Topic, rng: np.random.Generator
) -> GeneratedSentence:
    """One sentence from the given template family and topic."""
    templates, advising, hard = FAMILIES[family]
    template = templates[int(rng.integers(len(templates)))]
    return GeneratedSentence(
        text=fill(template, topic, rng),
        advising=advising,
        topic=topic.name,
        family=family,
        hard=hard,
    )
