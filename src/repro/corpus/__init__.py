"""Labeled guide corpora (stand-ins for the vendor documents).

The paper evaluates on three proprietary-ish vendor documents (NVIDIA
CUDA Programming Guide, AMD OpenCL Optimization Guide, Intel Xeon Phi
Best Practice Guide) that cannot be shipped here.  This package builds
faithful *synthetic* counterparts:

* every sentence the paper itself quotes from those guides is embedded
  verbatim (seed sentences);
* the rest is template-generated guide prose over per-domain topic
  vocabularies, with the same mixture of advising categories,
  expository/spec sentences, and deliberately hard cases;
* every sentence carries a ground-truth advising label assigned **at
  generation time by its template family** — never by running Egeria's
  selectors, so evaluation is not circular;
* corpus sizes match paper Table 7 and the labeled-chapter statistics
  of §4.3.

See :mod:`repro.corpus.guides` for the three builders and
:mod:`repro.corpus.queries` for the Table 6 performance issues and
their relevance ground truth.
"""

from repro.corpus.builder import GuideSpec, LabeledGuide, build_guide
from repro.corpus.guides import (
    cuda_guide,
    opencl_guide,
    xeon_guide,
    mpi_guide,
    GUIDE_BUILDERS,
)
from repro.corpus.queries import (
    PERFORMANCE_ISSUES,
    PerformanceIssueSpec,
    relevance_ground_truth,
)

__all__ = [
    "GuideSpec",
    "LabeledGuide",
    "build_guide",
    "cuda_guide",
    "opencl_guide",
    "xeon_guide",
    "mpi_guide",
    "GUIDE_BUILDERS",
    "PERFORMANCE_ISSUES",
    "PerformanceIssueSpec",
    "relevance_ground_truth",
]
