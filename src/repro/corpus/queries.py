"""Table 6 performance issues and their relevance ground truth.

The paper's §4.2 evaluation asks, for each of six performance issues
(from NVVP reports of four CUDA programs), which sentences of the CUDA
guide are *relevant advising sentences* — judged by three domain
experts with majority voting.

Here the expert judgment is encoded declaratively: an advising
sentence is relevant to an issue iff (a) its generation-time topic is
in the issue's relevant-topic set and (b) it mentions at least one of
the issue's characteristic terms (stem-level match).  The term filter
plays the role of the experts' "directly on point" criterion; it is
authored per issue and never derived from any retrieval method under
test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.builder import LabeledGuide
from repro.docs.document import Sentence
# stems the Table 6 issue specs' characteristic terms (ground-truth
# relevance criteria), not corpus sentences
from repro.textproc.porter import PorterStemmer  # egeria: noqa[no-direct-tokenize]

_STEMMER = PorterStemmer()


@dataclass(frozen=True)
class PerformanceIssueSpec:
    """One Table 6 row: report program, issue, and relevance criteria."""

    program: str            # NVVP report program (repro.profiler)
    issue_title: str        # must match the generated report's title
    topics: frozenset[str]  # relevant generation-time topics
    terms: frozenset[str]   # characteristic terms (stemmed on use)
    #: how many distinct characteristic terms a sentence must mention
    #: to count as directly on point (the experts' strictness knob)
    min_matches: int = 2
    #: keyword candidates for the keywords baseline (paper §4.2 lists
    #: the tried keywords; the underlined best is first)
    keywords: tuple[str, ...] = ()


PERFORMANCE_ISSUES: tuple[PerformanceIssueSpec, ...] = (
    PerformanceIssueSpec(
        program="knnjoin",
        issue_title="Low Warp Execution Efficiency",
        topics=frozenset({"divergence"}),
        terms=frozenset({"warp", "efficiency", "divergent", "branching",
                         "execution"}),
        keywords=("warp execution efficiency", "warp", "execution",
                  "efficiency", "warp efficiency"),
    ),
    PerformanceIssueSpec(
        program="knnjoin",
        issue_title="Divergent Branches",
        topics=frozenset({"divergence"}),
        terms=frozenset({"divergent", "branch", "warps"}),
        keywords=("divergent branch", "divergence", "branch"),
    ),
    PerformanceIssueSpec(
        program="knnjoin_opt",
        issue_title="Global Memory Alignment and Access Pattern",
        topics=frozenset({"memory_coalescing"}),
        terms=frozenset({"align", "coalesce", "pattern", "segment",
                         "pitch"}),
        keywords=("memory alignment", "memory", "alignment",
                  "access pattern"),
    ),
    PerformanceIssueSpec(
        program="trans",
        issue_title="GPU Utilization is Limited by Memory Instruction "
                    "Execution",
        topics=frozenset({"memory_coalescing"}),
        terms=frozenset({"instruction", "transaction", "load", "access"}),
        keywords=("memory instruction", "utilization", "memory",
                  "instruction"),
    ),
    PerformanceIssueSpec(
        program="trans",
        issue_title="Instruction Latencies may be Limiting Performance",
        topics=frozenset({"occupancy_latency"}),
        terms=frozenset({"latency", "hide", "resident", "parallelism",
                         "schedulers", "occupancy", "dimensions"}),
        keywords=("instruction latency", "instruction", "latency"),
    ),
    PerformanceIssueSpec(
        program="trans_opt",
        issue_title="GPU Utilization is Limited by Memory Bandwidth",
        topics=frozenset({"memory_bandwidth"}),
        terms=frozenset({"bandwidth", "throughput", "transfer", "cache",
                         "tile"}),
        keywords=("memory bandwidth", "memory", "bandwidth"),
    ),
)


def _stems(text: str) -> set[str]:
    tokens = (
        token.strip(".,;:!?()[]{}\"'")
        for token in text.replace("-", " ").split()
    )
    return {_STEMMER.stem(token) for token in tokens if token}


def relevance_ground_truth(
    guide: LabeledGuide, issue: PerformanceIssueSpec
) -> list[Sentence]:
    """Relevant advising sentences of *guide* for *issue*.

    Advising label comes from generation-time metadata; relevance
    requires topic membership plus at least one characteristic term.
    """
    term_stems = {_STEMMER.stem(t) for t in issue.terms}
    relevant: list[Sentence] = []
    for sentence, meta in zip(guide.document.sentences, guide.meta):
        if not meta.advising:
            continue
        if meta.topic not in issue.topics:
            continue
        if len(_stems(sentence.text) & term_stems) >= issue.min_matches:
            relevant.append(sentence)
    return relevant
